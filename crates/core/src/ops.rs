//! The four structural semi-join operators of the region algebra
//! (Definition 2.3): *including* `R ⊃ S`, *included* `R ⊂ S`, *precedes*
//! `R < S`, and *follows* `R > S`.
//!
//! These are the operators the paper singles out as having "a very efficient
//! evaluation engine" in PAT. The implementations here are sub-quadratic:
//!
//! * `R < S` / `R > S` need only the extreme endpoint of `S` — O(|R| + |S|).
//!   `R > S` selects a *suffix* of `R` in storage order, so its result is a
//!   zero-copy slice of `R` found by one binary search.
//! * `R ⊂ S` uses range maxima of right endpoints over `S` sorted by left —
//!   O(|R| log |S| + |S| log |S|).
//! * `R ⊃ S` uses a sparse-table range-minimum structure over right
//!   endpoints — O((|R| + |S|) log |S|).
//!
//! The auxiliary structures ([`PrefixMaxRight`], [`MinRightRmq`]) are built
//! lazily once per underlying [`crate::set::RegionBuf`] and memoized there
//! (see [`RegionSet::prefix_max_right`] / [`RegionSet::min_right_rmq`]), so
//! repeated probes of the same operand — across operators, plan nodes, and
//! whole query batches — pay the build a single time. Because a view may
//! start mid-buffer, probes address the buffer-wide structures with
//! buffer-absolute indices.
//!
//! Quadratic reference implementations live in [`crate::naive`] and serve as
//! the oracle for property tests and as the baseline for experiment E2.

use crate::par::Parallelism;
use crate::region::{Pos, Region};
use crate::set::RegionSet;

/// `R < S`: the regions of `R` that precede *some* region of `S`.
///
/// `r` precedes some `s` iff `right(r) < max{left(s)}`.
pub fn precedes(r: &RegionSet, s: &RegionSet) -> RegionSet {
    match s.max_left() {
        None => RegionSet::new(),
        Some(max_left) => r.filter(|x| x.right() < max_left),
    }
}

/// [`precedes`] with the scan over `R` split across threads.
pub fn precedes_par(r: &RegionSet, s: &RegionSet, par: &Parallelism) -> RegionSet {
    match s.max_left() {
        None => RegionSet::new(),
        Some(max_left) => r.filter_par(par, |x| x.right() < max_left),
    }
}

/// `R > S`: the regions of `R` that follow *some* region of `S`.
///
/// `r` follows some `s` iff `left(r) > min{right(s)}`. The qualifying
/// regions form a suffix of `R` in `(left asc, right desc)` order, so the
/// result is a zero-copy slice of `R`: one O(log |R|) binary search, no
/// region copies.
pub fn follows(r: &RegionSet, s: &RegionSet) -> RegionSet {
    match s.min_right() {
        None => RegionSet::new(),
        Some(min_right) => r.slice(r.upper_bound_left(min_right), r.len()),
    }
}

/// [`follows`]; already O(log |R|), so the parallel variant is the same
/// binary search.
pub fn follows_par(r: &RegionSet, s: &RegionSet, _par: &Parallelism) -> RegionSet {
    follows(r, s)
}

/// `R ⊂ S`: the regions of `R` strictly included in some region of `S`.
pub fn included_in(r: &RegionSet, s: &RegionSet) -> RegionSet {
    if r.is_empty() || s.is_empty() {
        return RegionSet::new();
    }
    let pm = s.prefix_max_right();
    let base = s.buf_start();
    r.filter(|x| included_in_probe(x, s, pm, base))
}

/// [`included_in`] with the probe loop over `R` split across threads.
pub fn included_in_par(r: &RegionSet, s: &RegionSet, par: &Parallelism) -> RegionSet {
    if r.is_empty() || s.is_empty() {
        return RegionSet::new();
    }
    let pm = s.prefix_max_right();
    let base = s.buf_start();
    r.filter_par(par, |x| included_in_probe(x, s, pm, base))
}

/// Is `x` strictly included in some region of `s`? `base` is the offset of
/// `s`'s view inside its buffer (`pm` is buffer-wide).
#[inline]
fn included_in_probe(x: Region, s: &RegionSet, pm: &PrefixMaxRight, base: usize) -> bool {
    // Candidates with left(s) < left(x): containment needs right(s) >= right(x).
    let lt = s.lower_bound_left(x.left());
    if pm
        .max_right_in(base, base + lt)
        .is_some_and(|m| m >= x.right())
    {
        return true;
    }
    // Candidates with left(s) == left(x): containment needs right(s) > right(x).
    // Within the equal-left group regions are sorted by right desc, so the
    // group's first element has the largest right endpoint.
    let le = s.upper_bound_left(x.left());
    lt < le && s.get(lt).right() > x.right()
}

/// `R ⊃ S`: the regions of `R` that strictly include some region of `S`.
pub fn includes(r: &RegionSet, s: &RegionSet) -> RegionSet {
    if r.is_empty() || s.is_empty() {
        return RegionSet::new();
    }
    let rmq = s.min_right_rmq();
    let base = s.buf_start();
    r.filter(|x| includes_probe(x, s, rmq, base))
}

/// [`includes`] with the probe loop over `R` split across threads.
pub fn includes_par(r: &RegionSet, s: &RegionSet, par: &Parallelism) -> RegionSet {
    if r.is_empty() || s.is_empty() {
        return RegionSet::new();
    }
    let rmq = s.min_right_rmq();
    let base = s.buf_start();
    r.filter_par(par, |x| includes_probe(x, s, rmq, base))
}

/// Does `x` strictly include some region of `s`? `base` is the offset of
/// `s`'s view inside its buffer (`rmq` is buffer-wide).
#[inline]
fn includes_probe(x: Region, s: &RegionSet, rmq: &MinRightRmq, base: usize) -> bool {
    // A region s with r ⊃ s must have left(s) in [left(x), right(x)].
    // Split the index range at left(s) == left(x):
    //  - strictly greater left: need right(s) <= right(x);
    //  - equal left: need right(s) < right(x) (strictness).
    let lo = s.lower_bound_left(x.left());
    let mid = s.upper_bound_left(x.left());
    let hi = s.upper_bound_left(x.right());
    if mid < hi {
        if let Some(min_r) = rmq.min_right(base + mid, base + hi) {
            if min_r <= x.right() {
                return true;
            }
        }
    }
    // Equal-left group is sorted right desc: its minimum right is last.
    lo < mid && s.get(mid - 1).right() < x.right()
}

/// Sparse-table range-*maximum* structure over right endpoints (in the
/// set's sorted-by-left order): the auxiliary behind `R ⊂ S`. Build is
/// O(n log n), queries are O(1). Built once per [`crate::set::RegionBuf`]
/// and memoized there; reusable across any number of probes.
///
/// (Historically a plain prefix-max array — the name stuck. Views can
/// start mid-buffer, and a prefix from index 0 would overcount for them,
/// so the structure answers arbitrary ranges.)
pub struct PrefixMaxRight {
    /// `table[k][i]` = max right endpoint of the 2^k entries starting at i.
    table: Vec<Vec<Pos>>,
}

impl PrefixMaxRight {
    /// Builds the range maxima over `s`'s right-endpoint column.
    pub fn new(s: &RegionSet) -> PrefixMaxRight {
        PrefixMaxRight::over_rights(s.rights())
    }

    /// Builds the range maxima over a raw right-endpoint column.
    pub fn over_rights(rights: &[Pos]) -> PrefixMaxRight {
        PrefixMaxRight {
            table: sparse_table(rights, |a, b| a.max(b)),
        }
    }

    /// Maximum right endpoint among indices `lo..hi` (half-open). Returns
    /// `None` for an empty range.
    #[inline]
    pub fn max_right_in(&self, lo: usize, hi: usize) -> Option<Pos> {
        sparse_query(&self.table, lo, hi, |a, b| a.max(b))
    }

    /// Maximum right endpoint among the first `count` entries (0 for an
    /// empty prefix).
    #[inline]
    pub fn max_right_of_first(&self, count: usize) -> Pos {
        self.max_right_in(0, count).unwrap_or(0)
    }
}

/// Sparse-table range-minimum structure over the right endpoints of a
/// [`RegionSet`] (in its sorted-by-left order). Build is O(n log n),
/// queries are O(1). Built once per [`crate::set::RegionBuf`] and
/// memoized there.
pub struct MinRightRmq {
    /// `table[k][i]` = min right endpoint of the 2^k entries starting at i.
    table: Vec<Vec<Pos>>,
}

impl MinRightRmq {
    /// Builds the structure over `s` (ordered as stored: left asc, right desc).
    pub fn new(s: &RegionSet) -> MinRightRmq {
        MinRightRmq::over_rights(s.rights())
    }

    /// Builds the structure over a raw right-endpoint column.
    pub fn over_rights(rights: &[Pos]) -> MinRightRmq {
        MinRightRmq {
            table: sparse_table(rights, |a, b| a.min(b)),
        }
    }

    /// Minimum right endpoint among indices `lo..hi` (half-open). Returns
    /// `None` for an empty range.
    pub fn min_right(&self, lo: usize, hi: usize) -> Option<Pos> {
        sparse_query(&self.table, lo, hi, |a, b| a.min(b))
    }
}

/// Builds a sparse table for an idempotent associative `combine`
/// (min/max): `table[k][i]` covers the 2^k entries starting at `i`.
fn sparse_table(base: &[Pos], combine: fn(Pos, Pos) -> Pos) -> Vec<Vec<Pos>> {
    let n = base.len();
    let levels = if n <= 1 {
        1
    } else {
        usize::BITS as usize - (n - 1).leading_zeros() as usize
    };
    let mut table = Vec::with_capacity(levels.max(1));
    table.push(base.to_vec());
    let mut k = 1usize;
    while (1 << k) <= n {
        let half = 1 << (k - 1);
        let prev = &table[k - 1];
        let row: Vec<Pos> = (0..=n - (1 << k))
            .map(|i| combine(prev[i], prev[i + half]))
            .collect();
        table.push(row);
        k += 1;
    }
    table
}

/// O(1) sparse-table query over `lo..hi` (half-open; `None` when empty).
#[inline]
fn sparse_query(
    table: &[Vec<Pos>],
    lo: usize,
    hi: usize,
    combine: fn(Pos, Pos) -> Pos,
) -> Option<Pos> {
    if lo >= hi {
        return None;
    }
    let len = hi - lo;
    let k = usize::BITS as usize - 1 - len.leading_zeros() as usize;
    let a = table[k][lo];
    let b = table[k][hi - (1 << k)];
    Some(combine(a, b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;
    use crate::region::region;

    fn set(rs: &[(Pos, Pos)]) -> RegionSet {
        rs.iter().map(|&(l, r)| region(l, r)).collect()
    }

    #[test]
    fn precedes_basic() {
        let r = set(&[(0, 2), (3, 5), (8, 9)]);
        let s = set(&[(6, 7)]);
        assert_eq!(precedes(&r, &s), set(&[(0, 2), (3, 5)]));
        assert_eq!(follows(&r, &s), set(&[(8, 9)]));
        assert!(precedes(&r, &RegionSet::new()).is_empty());
        assert!(follows(&r, &RegionSet::new()).is_empty());
    }

    #[test]
    fn touching_regions_do_not_precede() {
        let r = set(&[(0, 6)]);
        let s = set(&[(6, 7)]);
        assert!(precedes(&r, &s).is_empty());
    }

    #[test]
    fn follows_is_a_zero_copy_suffix() {
        let r = set(&[(0, 2), (3, 5), (8, 9), (10, 11)]);
        let s = set(&[(1, 4), (6, 7)]);
        let out = follows(&r, &s);
        assert_eq!(out, set(&[(8, 9), (10, 11)]));
        assert!(out.shares_buf(&r), "follows must alias its left operand");
        // Contiguous precedes results also alias (prefix of R).
        let pre = precedes(&r, &set(&[(9, 20)]));
        assert_eq!(pre, set(&[(0, 2), (3, 5)]));
        assert!(pre.shares_buf(&r));
    }

    #[test]
    fn included_in_basic() {
        let r = set(&[(1, 2), (4, 8), (0, 20)]);
        let s = set(&[(0, 9)]);
        assert_eq!(included_in(&r, &s), set(&[(1, 2), (4, 8)]));
    }

    #[test]
    fn inclusion_excludes_identical_regions() {
        let r = set(&[(0, 9)]);
        let s = set(&[(0, 9)]);
        assert!(included_in(&r, &s).is_empty());
        assert!(includes(&r, &s).is_empty());
    }

    #[test]
    fn inclusion_with_shared_endpoint_is_strict_inclusion() {
        // [0..9] ⊃ [0..5]: shares the left endpoint but is strictly larger.
        let r = set(&[(0, 9)]);
        let s = set(&[(0, 5)]);
        assert_eq!(includes(&r, &s), set(&[(0, 9)]));
        assert_eq!(included_in(&s, &r), set(&[(0, 5)]));
        // shared right endpoint
        let s2 = set(&[(4, 9)]);
        assert_eq!(includes(&r, &s2), set(&[(0, 9)]));
        assert_eq!(included_in(&s2, &r), set(&[(4, 9)]));
    }

    #[test]
    fn includes_basic() {
        let r = set(&[(0, 9), (2, 3), (10, 30)]);
        let s = set(&[(4, 5), (12, 13)]);
        assert_eq!(includes(&r, &s), set(&[(0, 9), (10, 30)]));
    }

    #[test]
    fn rmq_matches_scan() {
        let s = set(&[(0, 9), (1, 7), (2, 12), (3, 3), (5, 6)]);
        let rmq = MinRightRmq::new(&s);
        let pm = PrefixMaxRight::new(&s);
        let rights: Vec<Pos> = s.iter().map(|r| r.right()).collect();
        for lo in 0..=s.len() {
            for hi in lo..=s.len() {
                let min = rights.get(lo..hi).and_then(|w| w.iter().copied().min());
                let max = rights.get(lo..hi).and_then(|w| w.iter().copied().max());
                assert_eq!(rmq.min_right(lo, hi), min, "min range {lo}..{hi}");
                assert_eq!(pm.max_right_in(lo, hi), max, "max range {lo}..{hi}");
            }
        }
        assert_eq!(pm.max_right_of_first(0), 0);
        assert_eq!(pm.max_right_of_first(3), 12);
    }

    /// Mid-buffer views must probe correctly: the memoized auxiliaries are
    /// buffer-wide, so a stale prefix-from-zero interpretation would let
    /// regions *before* the view leak into the answer.
    #[test]
    fn ops_are_correct_on_mid_buffer_views() {
        let parent = set(&[(0, 50), (2, 3), (6, 40), (8, 9), (12, 13)]);
        // Suffix view dropping the huge [0..50] and [2..3].
        let s = parent.slice(2, 5);
        assert!(s.shares_buf(&parent));
        let r = set(&[(7, 20), (9, 10), (0, 45)]);
        assert_eq!(includes(&r, &s), naive::includes(&r, &s));
        assert_eq!(included_in(&r, &s), naive::included_in(&r, &s));
        // [0..45] ⊂ [0..50] in the parent, but [0..50] is outside the view.
        assert!(included_in(&set(&[(0, 45)]), &s).is_empty());
        // Views as left operand too.
        let rv = parent.slice(1, 4);
        assert_eq!(includes(&rv, &r), naive::includes(&rv, &r));
        assert_eq!(included_in(&rv, &r), naive::included_in(&rv, &r));
        assert_eq!(precedes(&rv, &r), naive::precedes(&rv, &r));
        assert_eq!(follows(&rv, &r), naive::follows(&rv, &r));
    }

    /// Cross-check all four fast operators against the naive oracle on a
    /// deterministic pseudo-random workload (the real randomized version is
    /// a proptest in `tests/`).
    #[test]
    fn fast_ops_match_naive_oracle() {
        let mut seed = 0x2545F49u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..50 {
            let mk = |next: &mut dyn FnMut() -> u64| {
                let n = (next() % 12) as usize;
                (0..n)
                    .map(|_| {
                        let l = (next() % 30) as Pos;
                        let len = (next() % 10) as Pos;
                        region(l, l + len)
                    })
                    .collect::<RegionSet>()
            };
            let r = mk(&mut next);
            let s = mk(&mut next);
            assert_eq!(
                includes(&r, &s),
                naive::includes(&r, &s),
                "⊃ r={r:?} s={s:?}"
            );
            assert_eq!(
                included_in(&r, &s),
                naive::included_in(&r, &s),
                "⊂ r={r:?} s={s:?}"
            );
            assert_eq!(
                precedes(&r, &s),
                naive::precedes(&r, &s),
                "< r={r:?} s={s:?}"
            );
            assert_eq!(follows(&r, &s), naive::follows(&r, &s), "> r={r:?} s={s:?}");
        }
    }
}
