//! The four structural semi-join operators of the region algebra
//! (Definition 2.3): *including* `R ⊃ S`, *included* `R ⊂ S`, *precedes*
//! `R < S`, and *follows* `R > S`.
//!
//! These are the operators the paper singles out as having "a very efficient
//! evaluation engine" in PAT. The implementations here are sub-quadratic
//! *sweeps*: both operands are already sorted by `(left asc, right desc)`,
//! so the candidate window of `S` that a probe region `x ∈ R` must examine
//! advances monotonically as the sweep walks `R` left-to-right:
//!
//! * `R < S` / `R > S` need only the extreme endpoint of `S` — O(|R| + |S|).
//!   `R > S` selects a *suffix* of `R` in storage order, so its result is a
//!   zero-copy slice of `R` found by one branchless binary search; `R < S`
//!   is one chunked compare pass over `R`'s right column
//!   ([`crate::kernel::mask_lt`]).
//! * `R ⊂ S` maintains the count `j` of partners with a strictly smaller
//!   left and their running maximum right endpoint incrementally —
//!   amortized O(1) per probe, O(|R| + |S|) total — and evaluates each run
//!   of probes sharing one window state with a branchless chunked kernel
//!   ([`crate::kernel::mask_included_run`]).
//! * `R ⊃ S` hoists the same monotone window advance out of the probe loop
//!   (the fix for the historical `includes`-vs-`included_in` asymmetry:
//!   the old probe re-derived its candidate window with three binary
//!   searches per region) and answers the non-monotone upper bound by
//!   galloping from the window start, plus one O(1) range-minimum lookup —
//!   O((|R| + |S|) log g) where `g` is the average gallop distance.
//!
//! The auxiliary structures ([`PrefixMaxRight`], [`MinRightRmq`]) are built
//! lazily once per underlying [`crate::set::RegionBuf`] and memoized there
//! (see [`RegionSet::prefix_max_right`] / [`RegionSet::min_right_rmq`]).
//! The serial sweeps only consult them to *seed* a mid-array start, so the
//! parallel variants chunk `R`, seed each chunk's window with one lookup,
//! and produce bit-identical results. Because a view may start mid-buffer,
//! probes address the buffer-wide structures with buffer-absolute indices.
//!
//! Probe results accumulate in a [`Bitmask`] and materialize in one
//! bitmask-gather pass (`RegionSet::gather_mask` → [`crate::kernel::compress`]),
//! which also preserves the zero-copy guarantee: a contiguous mask becomes
//! a slice of `R`, not a copy.
//!
//! Quadratic reference implementations live in [`crate::naive`] and serve as
//! the oracle for property tests and as the baseline for experiment E2.

use crate::kernel::{self, Bitmask};
use crate::par::{self, Parallelism};
use crate::region::Pos;
use crate::set::RegionSet;

/// `R < S`: the regions of `R` that precede *some* region of `S`.
///
/// `r` precedes some `s` iff `right(r) < max{left(s)}`.
pub fn precedes(r: &RegionSet, s: &RegionSet) -> RegionSet {
    match s.max_left() {
        None => RegionSet::new(),
        Some(max_left) => precedes_before(r, max_left),
    }
}

/// The `precedes` boundary filter against a known bound: the rows of `r`
/// with `right < bound`, computed as one chunked compare pass and
/// materialized from the bitmask (a zero-copy slice of `r` when the
/// survivors are contiguous). The segmented executor calls this directly
/// with the global bound.
pub(crate) fn precedes_before(r: &RegionSet, bound: Pos) -> RegionSet {
    let mut mask = Bitmask::zeros(r.len());
    kernel::mask_lt(r.rights(), 0, r.len(), bound, &mut mask);
    r.gather_mask(&mask)
}

/// [`precedes`]; the compare pass is memory-bound and already chunked, so
/// the parallel variant is the same single pass.
pub fn precedes_par(r: &RegionSet, s: &RegionSet, _par: &Parallelism) -> RegionSet {
    precedes(r, s)
}

/// `R > S`: the regions of `R` that follow *some* region of `S`.
///
/// `r` follows some `s` iff `left(r) > min{right(s)}`. The qualifying
/// regions form a suffix of `R` in `(left asc, right desc)` order, so the
/// result is a zero-copy slice of `R`: one O(log |R|) binary search, no
/// region copies.
pub fn follows(r: &RegionSet, s: &RegionSet) -> RegionSet {
    match s.min_right() {
        None => RegionSet::new(),
        Some(min_right) => r.slice(r.upper_bound_left(min_right), r.len()),
    }
}

/// [`follows`]; already O(log |R|), so the parallel variant is the same
/// binary search.
pub fn follows_par(r: &RegionSet, s: &RegionSet, _par: &Parallelism) -> RegionSet {
    follows(r, s)
}

/// `R ⊂ S`: the regions of `R` strictly included in some region of `S`.
pub fn included_in(r: &RegionSet, s: &RegionSet) -> RegionSet {
    if r.is_empty() || s.is_empty() {
        return RegionSet::new();
    }
    let mut mask = Bitmask::zeros(r.len());
    included_in_sweep(r, s, 0, r.len(), &mut mask);
    r.gather_mask(&mask)
}

/// [`included_in`] with the sweep over `R` split across threads. Each
/// chunk seeds its window from the memoized prefix-max structure, so the
/// result is bit-identical to the serial sweep.
pub fn included_in_par(r: &RegionSet, s: &RegionSet, par: &Parallelism) -> RegionSet {
    if r.is_empty() || s.is_empty() {
        return RegionSet::new();
    }
    let chunks = par.chunks_for(r.len());
    if chunks <= 1 {
        return included_in(r, s);
    }
    // Prebuild the shared seed structure once, outside the fan-out.
    s.prefix_max_right();
    let pieces = par::map_chunks(r.len(), chunks, |range| {
        let mut m = Bitmask::zeros(r.len());
        included_in_sweep(r, s, range.start, range.end, &mut m);
        m
    });
    let mut mask = Bitmask::zeros(r.len());
    for p in &pieces {
        mask.or_mask(p);
    }
    r.gather_mask(&mask)
}

/// The `R ⊂ S` sweep over rows `lo..hi` of `r` (view-relative), setting
/// survivor bits in `mask`.
///
/// Walking `r` by ascending left, the containing-candidate window of `s`
/// is fully described by two monotone quantities: `j`, the number of
/// partners with a strictly smaller left, and the running maximum right
/// endpoint among those `j` — both advanced incrementally (amortized O(1)
/// per row). Runs of rows between two consecutive partner lefts share one
/// window state and are evaluated by the chunked compare kernel. A
/// mid-array start (`lo > 0`, the parallel chunks) seeds the window with
/// one branchless search plus one memoized range-max lookup.
fn included_in_sweep(r: &RegionSet, s: &RegionSet, lo: usize, hi: usize, mask: &mut Bitmask) {
    if lo >= hi {
        return;
    }
    let (rl, rr) = (r.lefts(), r.rights());
    let (sl, sr) = (s.lefts(), s.rights());
    let m = sl.len();
    let chunked = kernel::chunked_enabled();
    let (mut runs, mut tails) = (0u64, 0u64);
    let mut j = kernel::lower_bound(sl, rl[lo]);
    let (mut run_max, mut has_prev) = if j == 0 {
        (0, false)
    } else {
        let base = s.buf_start();
        let seeded = s.prefix_max_right().max_right_in(base, base + j);
        (seeded.unwrap_or(0), true)
    };
    let mut i = lo;
    while i < hi {
        // Advance the window to rl[i]: consume partners with a smaller left.
        while j < m && sl[j] < rl[i] {
            run_max = run_max.max(sr[j]);
            has_prev = true;
            j += 1;
        }
        // Rows i..run_end (lefts ≤ the next partner left) share this
        // window state; the head of the equal-left partner group — sorted
        // right desc, so its first element carries the group maximum — is
        // s[j] exactly when its left matches the row's.
        let (run_end, eq) = if j < m {
            let end = kernel::gallop_upper_bound(rl, i, sl[j]).min(hi);
            (end, Some((sl[j], sr[j])))
        } else {
            (hi, None)
        };
        kernel::mask_included_run(rl, rr, i, run_end, run_max, has_prev, eq, mask);
        if chunked {
            runs += 1;
            tails += u64::from(!(run_end - i).is_multiple_of(kernel::LANES));
        }
        i = run_end;
    }
    // One flush for the whole sweep: totals identical to per-run counting,
    // but the (often tiny) runs stay free of registry atomics.
    kernel::count_chunked_runs(runs, tails);
}

/// `R ⊃ S`: the regions of `R` that strictly include some region of `S`.
pub fn includes(r: &RegionSet, s: &RegionSet) -> RegionSet {
    if r.is_empty() || s.is_empty() {
        return RegionSet::new();
    }
    let mut mask = Bitmask::zeros(r.len());
    includes_sweep(r, s, 0, r.len(), &mut mask);
    r.gather_mask(&mask)
}

/// [`includes`] with the sweep over `R` split across threads. Each chunk
/// seeds its window with one branchless search; results are bit-identical
/// to the serial sweep.
pub fn includes_par(r: &RegionSet, s: &RegionSet, par: &Parallelism) -> RegionSet {
    if r.is_empty() || s.is_empty() {
        return RegionSet::new();
    }
    let chunks = par.chunks_for(r.len());
    if chunks <= 1 {
        return includes(r, s);
    }
    // Prebuild the shared range-min structure once, outside the fan-out.
    s.min_right_rmq();
    let pieces = par::map_chunks(r.len(), chunks, |range| {
        let mut m = Bitmask::zeros(r.len());
        includes_sweep(r, s, range.start, range.end, &mut m);
        m
    });
    let mut mask = Bitmask::zeros(r.len());
    for p in &pieces {
        mask.or_mask(p);
    }
    r.gather_mask(&mask)
}

/// The `R ⊃ S` sweep over rows `lo..hi` of `r` (view-relative), setting
/// survivor bits in `mask`.
///
/// A row `x` includes some partner iff a partner left falls in
/// `[left(x), right(x)]` with a small-enough right endpoint. The window
/// start `mid` (first partner left strictly greater than `left(x)`) is
/// monotone in the sweep and advances amortized O(1) — this hoist is what
/// closes the historical gap against `included_in`, whose probe was
/// already windowed. The window *end* depends on `right(x)` and is not
/// monotone, so it is found by galloping from `mid` (cheap when probes
/// land close together, log |S| worst case); the survivor test is then one
/// O(1) memoized range-minimum lookup plus the strict equal-left check.
fn includes_sweep(r: &RegionSet, s: &RegionSet, lo: usize, hi: usize, mask: &mut Bitmask) {
    if lo >= hi {
        return;
    }
    let (rl, rr) = (r.lefts(), r.rights());
    let (sl, sr) = (s.lefts(), s.rights());
    let m = sl.len();
    let rmq = s.min_right_rmq();
    let base = s.buf_start();
    let mut mid = kernel::upper_bound(sl, rl[lo]);
    for i in lo..hi {
        while mid < m && sl[mid] <= rl[i] {
            mid += 1;
        }
        // Partners with left in (left(x), right(x)]: need right ≤ right(x).
        let hi_s = kernel::gallop_upper_bound(sl, mid, rr[i]);
        let hit = (mid < hi_s
            && rmq
                .min_right(base + mid, base + hi_s)
                .is_some_and(|mn| mn <= rr[i]))
            // Equal-left group (sorted right desc, minimum right last):
            // strict inclusion needs right < right(x), and the element
            // just before `mid` is the group minimum when lefts match.
            || (mid > 0 && sl[mid - 1] == rl[i] && sr[mid - 1] < rr[i]);
        if hit {
            mask.set(i);
        }
    }
}

/// Sparse-table range-*maximum* structure over right endpoints (in the
/// set's sorted-by-left order): the auxiliary behind `R ⊂ S`. Build is
/// O(n log n), queries are O(1). Built once per [`crate::set::RegionBuf`]
/// and memoized there; reusable across any number of probes.
///
/// (Historically a plain prefix-max array — the name stuck. Views can
/// start mid-buffer, and a prefix from index 0 would overcount for them,
/// so the structure answers arbitrary ranges.)
pub struct PrefixMaxRight {
    /// `table[k][i]` = max right endpoint of the 2^k entries starting at i.
    table: Vec<Vec<Pos>>,
}

impl PrefixMaxRight {
    /// Builds the range maxima over `s`'s right-endpoint column.
    pub fn new(s: &RegionSet) -> PrefixMaxRight {
        PrefixMaxRight::over_rights(s.rights())
    }

    /// Builds the range maxima over a raw right-endpoint column.
    pub fn over_rights(rights: &[Pos]) -> PrefixMaxRight {
        PrefixMaxRight {
            table: sparse_table(rights, |a, b| a.max(b)),
        }
    }

    /// Maximum right endpoint among indices `lo..hi` (half-open). Returns
    /// `None` for an empty range.
    #[inline]
    pub fn max_right_in(&self, lo: usize, hi: usize) -> Option<Pos> {
        sparse_query(&self.table, lo, hi, |a, b| a.max(b))
    }

    /// Maximum right endpoint among the first `count` entries (0 for an
    /// empty prefix).
    #[inline]
    pub fn max_right_of_first(&self, count: usize) -> Pos {
        self.max_right_in(0, count).unwrap_or(0)
    }
}

/// Sparse-table range-minimum structure over the right endpoints of a
/// [`RegionSet`] (in its sorted-by-left order). Build is O(n log n),
/// queries are O(1). Built once per [`crate::set::RegionBuf`] and
/// memoized there.
pub struct MinRightRmq {
    /// `table[k][i]` = min right endpoint of the 2^k entries starting at i.
    table: Vec<Vec<Pos>>,
}

impl MinRightRmq {
    /// Builds the structure over `s` (ordered as stored: left asc, right desc).
    pub fn new(s: &RegionSet) -> MinRightRmq {
        MinRightRmq::over_rights(s.rights())
    }

    /// Builds the structure over a raw right-endpoint column.
    pub fn over_rights(rights: &[Pos]) -> MinRightRmq {
        MinRightRmq {
            table: sparse_table(rights, |a, b| a.min(b)),
        }
    }

    /// Minimum right endpoint among indices `lo..hi` (half-open). Returns
    /// `None` for an empty range.
    pub fn min_right(&self, lo: usize, hi: usize) -> Option<Pos> {
        sparse_query(&self.table, lo, hi, |a, b| a.min(b))
    }
}

/// Builds a sparse table for an idempotent associative `combine`
/// (min/max): `table[k][i]` covers the 2^k entries starting at `i`.
fn sparse_table(base: &[Pos], combine: fn(Pos, Pos) -> Pos) -> Vec<Vec<Pos>> {
    let n = base.len();
    let levels = if n <= 1 {
        1
    } else {
        usize::BITS as usize - (n - 1).leading_zeros() as usize
    };
    let mut table = Vec::with_capacity(levels.max(1));
    table.push(base.to_vec());
    let mut k = 1usize;
    while (1 << k) <= n {
        let half = 1 << (k - 1);
        let prev = &table[k - 1];
        let row: Vec<Pos> = (0..=n - (1 << k))
            .map(|i| combine(prev[i], prev[i + half]))
            .collect();
        table.push(row);
        k += 1;
    }
    table
}

/// O(1) sparse-table query over `lo..hi` (half-open; `None` when empty).
#[inline]
fn sparse_query(
    table: &[Vec<Pos>],
    lo: usize,
    hi: usize,
    combine: fn(Pos, Pos) -> Pos,
) -> Option<Pos> {
    if lo >= hi {
        return None;
    }
    let len = hi - lo;
    let k = usize::BITS as usize - 1 - len.leading_zeros() as usize;
    let a = table[k][lo];
    let b = table[k][hi - (1 << k)];
    Some(combine(a, b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;
    use crate::region::region;

    fn set(rs: &[(Pos, Pos)]) -> RegionSet {
        rs.iter().map(|&(l, r)| region(l, r)).collect()
    }

    #[test]
    fn precedes_basic() {
        let r = set(&[(0, 2), (3, 5), (8, 9)]);
        let s = set(&[(6, 7)]);
        assert_eq!(precedes(&r, &s), set(&[(0, 2), (3, 5)]));
        assert_eq!(follows(&r, &s), set(&[(8, 9)]));
        assert!(precedes(&r, &RegionSet::new()).is_empty());
        assert!(follows(&r, &RegionSet::new()).is_empty());
    }

    #[test]
    fn touching_regions_do_not_precede() {
        let r = set(&[(0, 6)]);
        let s = set(&[(6, 7)]);
        assert!(precedes(&r, &s).is_empty());
    }

    #[test]
    fn follows_is_a_zero_copy_suffix() {
        let r = set(&[(0, 2), (3, 5), (8, 9), (10, 11)]);
        let s = set(&[(1, 4), (6, 7)]);
        let out = follows(&r, &s);
        assert_eq!(out, set(&[(8, 9), (10, 11)]));
        assert!(out.shares_buf(&r), "follows must alias its left operand");
        // Contiguous precedes results also alias (prefix of R).
        let pre = precedes(&r, &set(&[(9, 20)]));
        assert_eq!(pre, set(&[(0, 2), (3, 5)]));
        assert!(pre.shares_buf(&r));
    }

    #[test]
    fn included_in_basic() {
        let r = set(&[(1, 2), (4, 8), (0, 20)]);
        let s = set(&[(0, 9)]);
        assert_eq!(included_in(&r, &s), set(&[(1, 2), (4, 8)]));
    }

    #[test]
    fn inclusion_excludes_identical_regions() {
        let r = set(&[(0, 9)]);
        let s = set(&[(0, 9)]);
        assert!(included_in(&r, &s).is_empty());
        assert!(includes(&r, &s).is_empty());
    }

    #[test]
    fn inclusion_with_shared_endpoint_is_strict_inclusion() {
        // [0..9] ⊃ [0..5]: shares the left endpoint but is strictly larger.
        let r = set(&[(0, 9)]);
        let s = set(&[(0, 5)]);
        assert_eq!(includes(&r, &s), set(&[(0, 9)]));
        assert_eq!(included_in(&s, &r), set(&[(0, 5)]));
        // shared right endpoint
        let s2 = set(&[(4, 9)]);
        assert_eq!(includes(&r, &s2), set(&[(0, 9)]));
        assert_eq!(included_in(&s2, &r), set(&[(4, 9)]));
    }

    #[test]
    fn includes_basic() {
        let r = set(&[(0, 9), (2, 3), (10, 30)]);
        let s = set(&[(4, 5), (12, 13)]);
        assert_eq!(includes(&r, &s), set(&[(0, 9), (10, 30)]));
    }

    #[test]
    fn rmq_matches_scan() {
        let s = set(&[(0, 9), (1, 7), (2, 12), (3, 3), (5, 6)]);
        let rmq = MinRightRmq::new(&s);
        let pm = PrefixMaxRight::new(&s);
        let rights: Vec<Pos> = s.iter().map(|r| r.right()).collect();
        for lo in 0..=s.len() {
            for hi in lo..=s.len() {
                let min = rights.get(lo..hi).and_then(|w| w.iter().copied().min());
                let max = rights.get(lo..hi).and_then(|w| w.iter().copied().max());
                assert_eq!(rmq.min_right(lo, hi), min, "min range {lo}..{hi}");
                assert_eq!(pm.max_right_in(lo, hi), max, "max range {lo}..{hi}");
            }
        }
        assert_eq!(pm.max_right_of_first(0), 0);
        assert_eq!(pm.max_right_of_first(3), 12);
    }

    /// Mid-buffer views must probe correctly: the memoized auxiliaries are
    /// buffer-wide, so a stale prefix-from-zero interpretation would let
    /// regions *before* the view leak into the answer.
    #[test]
    fn ops_are_correct_on_mid_buffer_views() {
        let parent = set(&[(0, 50), (2, 3), (6, 40), (8, 9), (12, 13)]);
        // Suffix view dropping the huge [0..50] and [2..3].
        let s = parent.slice(2, 5);
        assert!(s.shares_buf(&parent));
        let r = set(&[(7, 20), (9, 10), (0, 45)]);
        assert_eq!(includes(&r, &s), naive::includes(&r, &s));
        assert_eq!(included_in(&r, &s), naive::included_in(&r, &s));
        // [0..45] ⊂ [0..50] in the parent, but [0..50] is outside the view.
        assert!(included_in(&set(&[(0, 45)]), &s).is_empty());
        // Views as left operand too.
        let rv = parent.slice(1, 4);
        assert_eq!(includes(&rv, &r), naive::includes(&rv, &r));
        assert_eq!(included_in(&rv, &r), naive::included_in(&rv, &r));
        assert_eq!(precedes(&rv, &r), naive::precedes(&rv, &r));
        assert_eq!(follows(&rv, &r), naive::follows(&rv, &r));
    }

    /// Cross-check all four fast operators against the naive oracle on a
    /// deterministic pseudo-random workload (the real randomized version is
    /// a proptest in `tests/`).
    #[test]
    fn fast_ops_match_naive_oracle() {
        let mut seed = 0x2545F49u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..50 {
            let mk = |next: &mut dyn FnMut() -> u64| {
                let n = (next() % 12) as usize;
                (0..n)
                    .map(|_| {
                        let l = (next() % 30) as Pos;
                        let len = (next() % 10) as Pos;
                        region(l, l + len)
                    })
                    .collect::<RegionSet>()
            };
            let r = mk(&mut next);
            let s = mk(&mut next);
            assert_eq!(
                includes(&r, &s),
                naive::includes(&r, &s),
                "⊃ r={r:?} s={s:?}"
            );
            assert_eq!(
                included_in(&r, &s),
                naive::included_in(&r, &s),
                "⊂ r={r:?} s={s:?}"
            );
            assert_eq!(
                precedes(&r, &s),
                naive::precedes(&r, &s),
                "< r={r:?} s={s:?}"
            );
            assert_eq!(follows(&r, &s), naive::follows(&r, &s), "> r={r:?} s={s:?}");
        }
    }
}
