//! The four structural semi-join operators of the region algebra
//! (Definition 2.3): *including* `R ⊃ S`, *included* `R ⊂ S`, *precedes*
//! `R < S`, and *follows* `R > S`.
//!
//! These are the operators the paper singles out as having "a very efficient
//! evaluation engine" in PAT. The implementations here are sub-quadratic:
//!
//! * `R < S` / `R > S` need only the extreme endpoint of `S` — O(|R| + |S|).
//! * `R ⊂ S` uses prefix maxima of right endpoints over `S` sorted by left —
//!   O(|R| log |S| + |S|).
//! * `R ⊃ S` uses a sparse-table range-minimum structure over right
//!   endpoints — O((|R| + |S|) log |S|).
//!
//! Quadratic reference implementations live in [`crate::naive`] and serve as
//! the oracle for property tests and as the baseline for experiment E2.

use crate::par::Parallelism;
use crate::region::{Pos, Region};
use crate::set::RegionSet;

/// `R < S`: the regions of `R` that precede *some* region of `S`.
///
/// `r` precedes some `s` iff `right(r) < max{left(s)}`.
pub fn precedes(r: &RegionSet, s: &RegionSet) -> RegionSet {
    match s.max_left() {
        None => RegionSet::new(),
        Some(max_left) => r.filter(|x| x.right() < max_left),
    }
}

/// [`precedes`] with the scan over `R` split across threads.
pub fn precedes_par(r: &RegionSet, s: &RegionSet, par: &Parallelism) -> RegionSet {
    match s.max_left() {
        None => RegionSet::new(),
        Some(max_left) => r.filter_par(par, |x| x.right() < max_left),
    }
}

/// `R > S`: the regions of `R` that follow *some* region of `S`.
///
/// `r` follows some `s` iff `left(r) > min{right(s)}` (an O(1) probe —
/// the set caches its minimum right endpoint).
pub fn follows(r: &RegionSet, s: &RegionSet) -> RegionSet {
    match s.min_right() {
        None => RegionSet::new(),
        Some(min_right) => r.filter(|x| x.left() > min_right),
    }
}

/// [`follows`] with the scan over `R` split across threads.
pub fn follows_par(r: &RegionSet, s: &RegionSet, par: &Parallelism) -> RegionSet {
    match s.min_right() {
        None => RegionSet::new(),
        Some(min_right) => r.filter_par(par, |x| x.left() > min_right),
    }
}

/// `R ⊂ S`: the regions of `R` strictly included in some region of `S`.
pub fn included_in(r: &RegionSet, s: &RegionSet) -> RegionSet {
    if r.is_empty() || s.is_empty() {
        return RegionSet::new();
    }
    included_in_with(r, s, &PrefixMaxRight::new(s))
}

/// [`included_in`] against a prefix-max structure the caller built once
/// for `s` (the plan executor shares it across every operator whose right
/// operand is the same plan node).
pub fn included_in_with(r: &RegionSet, s: &RegionSet, pm: &PrefixMaxRight) -> RegionSet {
    r.filter(|x| included_in_probe(x, s, pm))
}

/// [`included_in`] with the probe loop over `R` split across threads.
pub fn included_in_par(
    r: &RegionSet,
    s: &RegionSet,
    pm: &PrefixMaxRight,
    par: &Parallelism,
) -> RegionSet {
    if r.is_empty() || s.is_empty() {
        return RegionSet::new();
    }
    r.filter_par(par, |x| included_in_probe(x, s, pm))
}

/// Is `x` strictly included in some region of `s`?
#[inline]
fn included_in_probe(x: Region, s: &RegionSet, pm: &PrefixMaxRight) -> bool {
    // Candidates with left(s) < left(x): containment needs right(s) >= right(x).
    let lt = s.lower_bound_left(x.left());
    if lt > 0 && pm.max_right_of_first(lt) >= x.right() {
        return true;
    }
    // Candidates with left(s) == left(x): containment needs right(s) > right(x).
    // Within the equal-left group regions are sorted by right desc, so the
    // group's first element has the largest right endpoint.
    let le = s.upper_bound_left(x.left());
    lt < le && s.as_slice()[lt].right() > x.right()
}

/// `R ⊃ S`: the regions of `R` that strictly include some region of `S`.
pub fn includes(r: &RegionSet, s: &RegionSet) -> RegionSet {
    if r.is_empty() || s.is_empty() {
        return RegionSet::new();
    }
    includes_with(r, s, &MinRightRmq::new(s))
}

/// [`includes`] against a range-minimum structure the caller built once
/// for `s` — a chain like `(A ⊃ S) ⊃ S` (or a batch of queries probing the
/// same operand) pays the O(|S| log |S|) build a single time.
pub fn includes_with(r: &RegionSet, s: &RegionSet, rmq: &MinRightRmq) -> RegionSet {
    r.filter(|x| includes_probe(x, s, rmq))
}

/// [`includes`] with the probe loop over `R` split across threads.
pub fn includes_par(
    r: &RegionSet,
    s: &RegionSet,
    rmq: &MinRightRmq,
    par: &Parallelism,
) -> RegionSet {
    if r.is_empty() || s.is_empty() {
        return RegionSet::new();
    }
    r.filter_par(par, |x| includes_probe(x, s, rmq))
}

/// Does `x` strictly include some region of `s`?
#[inline]
fn includes_probe(x: Region, s: &RegionSet, rmq: &MinRightRmq) -> bool {
    // A region s with r ⊃ s must have left(s) in [left(x), right(x)].
    // Split the index range at left(s) == left(x):
    //  - strictly greater left: need right(s) <= right(x);
    //  - equal left: need right(s) < right(x) (strictness).
    let lo = s.lower_bound_left(x.left());
    let mid = s.upper_bound_left(x.left());
    let hi = s.upper_bound_left(x.right());
    if mid < hi {
        if let Some(min_r) = rmq.min_right(mid, hi) {
            if min_r <= x.right() {
                return true;
            }
        }
    }
    // Equal-left group is sorted right desc: its minimum right is last.
    lo < mid && s.as_slice()[mid - 1].right() < x.right()
}

/// Prefix maxima of right endpoints over a [`RegionSet`] (in its
/// sorted-by-left order): the O(|S|) auxiliary structure behind `R ⊂ S`.
/// Built once per operand and reusable across any number of probes.
pub struct PrefixMaxRight {
    /// `prefix[i]` = max right endpoint among the first `i` regions.
    prefix: Vec<Pos>,
}

impl PrefixMaxRight {
    /// Builds the prefix maxima for `s`.
    pub fn new(s: &RegionSet) -> PrefixMaxRight {
        let mut prefix: Vec<Pos> = Vec::with_capacity(s.len() + 1);
        prefix.push(0);
        let mut best = 0;
        for reg in s.iter() {
            best = best.max(reg.right());
            prefix.push(best);
        }
        PrefixMaxRight { prefix }
    }

    /// Maximum right endpoint among the first `count` regions (0 for an
    /// empty prefix).
    #[inline]
    pub fn max_right_of_first(&self, count: usize) -> Pos {
        self.prefix[count]
    }
}

/// Sparse-table range-minimum structure over the right endpoints of a
/// [`RegionSet`] (in its sorted-by-left order). Build is O(n log n),
/// queries are O(1).
pub struct MinRightRmq {
    /// `table[k][i]` = min right endpoint of the 2^k regions starting at i.
    table: Vec<Vec<Pos>>,
}

impl MinRightRmq {
    /// Builds the structure over `s` (ordered as stored: left asc, right desc).
    pub fn new(s: &RegionSet) -> MinRightRmq {
        let base: Vec<Pos> = s.iter().map(|r| r.right()).collect();
        let n = base.len();
        let levels = if n <= 1 {
            1
        } else {
            usize::BITS as usize - (n - 1).leading_zeros() as usize
        };
        let mut table = Vec::with_capacity(levels.max(1));
        table.push(base);
        let mut k = 1usize;
        while (1 << k) <= n {
            let half = 1 << (k - 1);
            let prev = &table[k - 1];
            let row: Vec<Pos> = (0..=n - (1 << k))
                .map(|i| prev[i].min(prev[i + half]))
                .collect();
            table.push(row);
            k += 1;
        }
        MinRightRmq { table }
    }

    /// Minimum right endpoint among indices `lo..hi` (half-open). Returns
    /// `None` for an empty range.
    pub fn min_right(&self, lo: usize, hi: usize) -> Option<Pos> {
        if lo >= hi {
            return None;
        }
        let len = hi - lo;
        let k = usize::BITS as usize - 1 - len.leading_zeros() as usize;
        let a = self.table[k][lo];
        let b = self.table[k][hi - (1 << k)];
        Some(a.min(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;
    use crate::region::region;

    fn set(rs: &[(Pos, Pos)]) -> RegionSet {
        rs.iter().map(|&(l, r)| region(l, r)).collect()
    }

    #[test]
    fn precedes_basic() {
        let r = set(&[(0, 2), (3, 5), (8, 9)]);
        let s = set(&[(6, 7)]);
        assert_eq!(precedes(&r, &s), set(&[(0, 2), (3, 5)]));
        assert_eq!(follows(&r, &s), set(&[(8, 9)]));
        assert!(precedes(&r, &RegionSet::new()).is_empty());
        assert!(follows(&r, &RegionSet::new()).is_empty());
    }

    #[test]
    fn touching_regions_do_not_precede() {
        let r = set(&[(0, 6)]);
        let s = set(&[(6, 7)]);
        assert!(precedes(&r, &s).is_empty());
    }

    #[test]
    fn included_in_basic() {
        let r = set(&[(1, 2), (4, 8), (0, 20)]);
        let s = set(&[(0, 9)]);
        assert_eq!(included_in(&r, &s), set(&[(1, 2), (4, 8)]));
    }

    #[test]
    fn inclusion_excludes_identical_regions() {
        let r = set(&[(0, 9)]);
        let s = set(&[(0, 9)]);
        assert!(included_in(&r, &s).is_empty());
        assert!(includes(&r, &s).is_empty());
    }

    #[test]
    fn inclusion_with_shared_endpoint_is_strict_inclusion() {
        // [0..9] ⊃ [0..5]: shares the left endpoint but is strictly larger.
        let r = set(&[(0, 9)]);
        let s = set(&[(0, 5)]);
        assert_eq!(includes(&r, &s), set(&[(0, 9)]));
        assert_eq!(included_in(&s, &r), set(&[(0, 5)]));
        // shared right endpoint
        let s2 = set(&[(4, 9)]);
        assert_eq!(includes(&r, &s2), set(&[(0, 9)]));
        assert_eq!(included_in(&s2, &r), set(&[(4, 9)]));
    }

    #[test]
    fn includes_basic() {
        let r = set(&[(0, 9), (2, 3), (10, 30)]);
        let s = set(&[(4, 5), (12, 13)]);
        assert_eq!(includes(&r, &s), set(&[(0, 9), (10, 30)]));
    }

    #[test]
    fn rmq_matches_scan() {
        let s = set(&[(0, 9), (1, 7), (2, 12), (3, 3), (5, 6)]);
        let rmq = MinRightRmq::new(&s);
        let rights: Vec<Pos> = s.iter().map(|r| r.right()).collect();
        for lo in 0..=s.len() {
            for hi in lo..=s.len() {
                let expect = rights[lo..hi].iter().copied().min();
                assert_eq!(rmq.min_right(lo, hi), expect, "range {lo}..{hi}");
            }
        }
    }

    /// Cross-check all four fast operators against the naive oracle on a
    /// deterministic pseudo-random workload (the real randomized version is
    /// a proptest in `tests/`).
    #[test]
    fn fast_ops_match_naive_oracle() {
        let mut seed = 0x2545F49u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..50 {
            let mk = |next: &mut dyn FnMut() -> u64| {
                let n = (next() % 12) as usize;
                (0..n)
                    .map(|_| {
                        let l = (next() % 30) as Pos;
                        let len = (next() % 10) as Pos;
                        region(l, l + len)
                    })
                    .collect::<RegionSet>()
            };
            let r = mk(&mut next);
            let s = mk(&mut next);
            assert_eq!(
                includes(&r, &s),
                naive::includes(&r, &s),
                "⊃ r={r:?} s={s:?}"
            );
            assert_eq!(
                included_in(&r, &s),
                naive::included_in(&r, &s),
                "⊂ r={r:?} s={s:?}"
            );
            assert_eq!(
                precedes(&r, &s),
                naive::precedes(&r, &s),
                "< r={r:?} s={s:?}"
            );
            assert_eq!(follows(&r, &s), naive::follows(&r, &s), "> r={r:?} s={s:?}");
        }
    }
}
