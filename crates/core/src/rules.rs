//! The verified rewrite-rule set: patterns, matching, and the oracle
//! verification protocol.
//!
//! Rules live in `RULES.txt` at the workspace root (embedded here via
//! `include_str!`), one identity per line in the form
//! `name: LHS == RHS` with metavariables `?a ?b ?c` and the seven
//! operators of Definition 2.2. They are *synthesized* by
//! `tr_ext::synth` (enumerate → conjecture by fingerprint → verify) and
//! *consumed* by the cost-based planner in [`crate::cost`], which
//! applies a rule in either direction whenever its model predicts a
//! cheaper plan.
//!
//! Nothing in the planner trusts the file: [`verify_rule`] re-checks an
//! identity against the quadratic [`crate::naive`] oracle (and the fast
//! kernels) on freshly seeded random region-set assignments, and the
//! regeneration test in `tr-ext` runs it over every shipped rule. A rule
//! that fails verification panics the process at first use — a wrong
//! rewrite is a correctness bug, not a performance bug.

use crate::eval::{OpTable, FAST, NAIVE};
use crate::expr::{BinOp, Expr};
use crate::region::region;
use crate::set::RegionSet;
use std::fmt;
use std::sync::OnceLock;

/// Maximum number of distinct metavariables in a rule (`?a ?b ?c`).
pub const MAX_VARS: usize = 3;

/// The shipped rule file, embedded at compile time.
pub const RULES_TEXT: &str = include_str!("../../../RULES.txt");

/// A rule pattern: a region-algebra expression over metavariables.
///
/// Patterns deliberately exclude `Select` and concrete names — every
/// shipped identity holds for *arbitrary* region sets, so a
/// metavariable can bind any sub-expression (including selections).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Pat {
    /// Metavariable `?a` (0), `?b` (1), `?c` (2).
    Var(u8),
    /// A binary operator over two sub-patterns.
    Bin(BinOp, Box<Pat>, Box<Pat>),
}

impl Pat {
    /// Metavariable `i` as a pattern.
    pub fn var(i: u8) -> Pat {
        Pat::Var(i)
    }

    /// Applies a binary operator.
    pub fn bin(op: BinOp, l: Pat, r: Pat) -> Pat {
        Pat::Bin(op, Box::new(l), Box::new(r))
    }

    /// Number of operator applications in the pattern.
    pub fn num_ops(&self) -> usize {
        match self {
            Pat::Var(_) => 0,
            Pat::Bin(_, l, r) => 1 + l.num_ops() + r.num_ops(),
        }
    }

    /// Marks which metavariables occur (index → present).
    fn mark_vars(&self, seen: &mut [bool; MAX_VARS]) {
        match self {
            Pat::Var(i) => seen[*i as usize] = true,
            Pat::Bin(_, l, r) => {
                l.mark_vars(seen);
                r.mark_vars(seen);
            }
        }
    }
}

impl fmt::Display for Pat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pat::Var(i) => write!(f, "?{}", (b'a' + i) as char),
            Pat::Bin(op, l, r) => write!(f, "({} {} {})", l, op.symbol(), r),
        }
    }
}

/// One verified identity: `lhs == rhs` for every assignment of region
/// sets to the metavariables.
#[derive(Debug, Clone)]
pub struct Rule {
    /// Stable rule name from `RULES.txt` (reported by `explain`).
    pub name: &'static str,
    /// Left-hand pattern.
    pub lhs: Pat,
    /// Right-hand pattern.
    pub rhs: Pat,
}

/// The parsed and validated shipped rule set.
///
/// Parsed once; panics on a malformed `RULES.txt` (a build artifact
/// problem, not a runtime condition). Oracle verification of the rules
/// themselves is the regeneration test's job — see [`verify_rule`].
pub fn verified_rules() -> &'static [Rule] {
    static RULES: OnceLock<Vec<Rule>> = OnceLock::new();
    RULES.get_or_init(|| parse_rules(RULES_TEXT).expect("malformed RULES.txt"))
}

/// The `version N` stamp of the shipped rule file.
pub fn rules_version() -> u64 {
    static VERSION: OnceLock<u64> = OnceLock::new();
    *VERSION.get_or_init(|| {
        RULES_TEXT
            .lines()
            .find_map(|l| l.trim().strip_prefix("version ")?.trim().parse().ok())
            .expect("RULES.txt missing `version N` line")
    })
}

/// Parses a rule file: `# comments`, blank lines, one `version N` line,
/// and `name: LHS == RHS` rules. Validates that every right-hand
/// metavariable is bound on the left and that the two sides differ.
pub fn parse_rules(text: &'static str) -> Result<Vec<Rule>, String> {
    let mut rules = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with("version ") {
            continue;
        }
        let err = |what: &str| format!("RULES.txt line {}: {what}: {line}", lineno + 1);
        let (name, body) = line.split_once(':').ok_or_else(|| err("missing `:`"))?;
        let (lhs_src, rhs_src) = body.split_once("==").ok_or_else(|| err("missing `==`"))?;
        let lhs = parse_pat(lhs_src).map_err(|e| err(&e))?;
        let rhs = parse_pat(rhs_src).map_err(|e| err(&e))?;
        if lhs == rhs {
            return Err(err("sides are identical"));
        }
        let (mut lv, mut rv) = ([false; MAX_VARS], [false; MAX_VARS]);
        lhs.mark_vars(&mut lv);
        rhs.mark_vars(&mut rv);
        if (0..MAX_VARS).any(|i| rv[i] && !lv[i]) {
            return Err(err("rhs uses a metavariable unbound on the lhs"));
        }
        rules.push(Rule {
            name: name.trim(),
            lhs,
            rhs,
        });
    }
    if rules.is_empty() {
        return Err("RULES.txt contains no rules".into());
    }
    Ok(rules)
}

/// Parses one side of a rule: `pat := ?v | ( pat op pat )`, fully
/// parenthesized (the file format never relies on precedence).
fn parse_pat(src: &str) -> Result<Pat, String> {
    let mut toks = tokenize(src)?;
    toks.reverse(); // pop() from the front
    let pat = parse_tokens(&mut toks)?;
    match toks.last() {
        None => Ok(pat),
        Some(t) => Err(format!("trailing token `{t}`")),
    }
}

fn tokenize(src: &str) -> Result<Vec<String>, String> {
    let mut toks = Vec::new();
    let mut chars = src.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            ' ' | '\t' => {}
            '(' | ')' => toks.push(c.to_string()),
            '?' => {
                let v = chars.next().ok_or("dangling `?`")?;
                toks.push(format!("?{v}"));
            }
            '∪' | '∩' | '−' | '⊃' | '⊂' | '<' | '>' => toks.push(c.to_string()),
            other => return Err(format!("unexpected character `{other}`")),
        }
    }
    Ok(toks)
}

fn parse_tokens(toks: &mut Vec<String>) -> Result<Pat, String> {
    let tok = toks.pop().ok_or("unexpected end of pattern")?;
    match tok.as_str() {
        "(" => {
            let l = parse_tokens(toks)?;
            let op_tok = toks.pop().ok_or("missing operator")?;
            let op = BinOp::ALL
                .into_iter()
                .find(|op| op.symbol() == op_tok)
                .ok_or_else(|| format!("unknown operator `{op_tok}`"))?;
            let r = parse_tokens(toks)?;
            match toks.pop().as_deref() {
                Some(")") => Ok(Pat::bin(op, l, r)),
                _ => Err("missing `)`".into()),
            }
        }
        v if v.starts_with('?') => {
            let c = v.as_bytes()[1];
            if !(b'a'..b'a' + MAX_VARS as u8).contains(&c) {
                return Err(format!("unknown metavariable `{v}`"));
            }
            Ok(Pat::Var(c - b'a'))
        }
        other => Err(format!("unexpected token `{other}`")),
    }
}

/// Matches `pat` against `e`, extending `binds` (one slot per
/// metavariable, all `None` on entry for a fresh attempt). A repeated
/// metavariable must bind structurally equal sub-expressions.
pub fn match_pat<'e>(pat: &Pat, e: &'e Expr, binds: &mut [Option<&'e Expr>; MAX_VARS]) -> bool {
    match pat {
        Pat::Var(i) => match binds[*i as usize] {
            Some(bound) => bound == e,
            None => {
                binds[*i as usize] = Some(e);
                true
            }
        },
        Pat::Bin(op, pl, pr) => match e {
            Expr::Bin(eop, el, er) if eop == op => {
                match_pat(pl, el, binds) && match_pat(pr, er, binds)
            }
            _ => false,
        },
    }
}

/// Builds the expression `pat[binds]`, or `None` if `pat` uses a
/// metavariable the match left unbound. That happens when a rule is
/// applied in *reverse* with a strictly smaller variable set on the
/// matched side — e.g. `absorb-union` backwards would have to conjure a
/// `?b` out of thin air; such a direction simply does not apply.
pub fn instantiate(pat: &Pat, binds: &[Option<&Expr>; MAX_VARS]) -> Option<Expr> {
    match pat {
        Pat::Var(i) => binds[*i as usize].cloned(),
        Pat::Bin(op, l, r) => Some(Expr::bin(
            *op,
            instantiate(l, binds)?,
            instantiate(r, binds)?,
        )),
    }
}

/// Rewrites the *root* of `e` by `lhs → rhs` if `lhs` matches there and
/// binds every metavariable `rhs` needs. The planner walks the tree
/// itself, so root-only is all it needs.
pub fn rewrite_root(e: &Expr, lhs: &Pat, rhs: &Pat) -> Option<Expr> {
    let mut binds: [Option<&Expr>; MAX_VARS] = [None; MAX_VARS];
    if match_pat(lhs, e, &mut binds) {
        instantiate(rhs, &binds)
    } else {
        None
    }
}

/// Evaluates a pattern under an assignment of region sets to
/// metavariables, with set operators exact and structural operators
/// drawn from `t` (so the same assignment can be run under both
/// [`NAIVE`] and [`FAST`]).
pub fn eval_pat(pat: &Pat, env: &[RegionSet; MAX_VARS], t: &OpTable) -> RegionSet {
    match pat {
        Pat::Var(i) => env[*i as usize].clone(),
        Pat::Bin(op, l, r) => {
            let lv = eval_pat(l, env, t);
            let rv = eval_pat(r, env, t);
            match op {
                BinOp::Union => lv.union(&rv),
                BinOp::Intersect => lv.intersect(&rv),
                BinOp::Diff => lv.difference(&rv),
                BinOp::Including => (t.includes)(&lv, &rv),
                BinOp::IncludedIn => (t.included_in)(&lv, &rv),
                BinOp::Before => (t.precedes)(&lv, &rv),
                BinOp::After => (t.follows)(&lv, &rv),
            }
        }
    }
}

/// SplitMix64 — tr-core has no dependency on the vendored `rand` in
/// library code, and verification needs only a small, well-seeded
/// stream.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// One random metavariable assignment. Deliberately adversarial for
/// identities: empty sets, *aliased* variables (two metavariables bound
/// to the same set — the assignments that kill `?a ⊂ ?a == ?a` under
/// strict inclusion), and — crucially — variables drawn as overlapping
/// subsets of one shared region pool. The shared pool makes cross-
/// variable coincidences routine, so conjectures that only hold when
/// operands never interact (`?a ∩ (?b ⊂ ?c) == ∅`-style fingerprint
/// coincidences) are refuted within a few rounds instead of surviving
/// on disjoint random data.
fn random_env(rng: &mut SplitMix64) -> [RegionSet; MAX_VARS] {
    // A hierarchical shared pool: wide spans with strict sub-regions
    // (so inclusion chains and span-crossing counterexamples exist),
    // plus free-standing regions.
    let mut pool: Vec<crate::region::Region> = Vec::with_capacity(24);
    for _ in 0..4 {
        let l = rng.below(36) as u32;
        let len = 8 + rng.below(12) as u32;
        pool.push(region(l, l + len));
        for _ in 0..rng.below(4) {
            let cl = l + 1 + rng.below(len as u64 - 1) as u32;
            let clen = rng.below((l + len - cl + 1) as u64) as u32;
            pool.push(region(cl, cl + clen));
        }
    }
    for _ in 0..4 {
        let l = rng.below(48) as u32;
        pool.push(region(l, l + rng.below(9) as u32));
    }
    let mut env: [RegionSet; MAX_VARS] = [RegionSet::new(), RegionSet::new(), RegionSet::new()];
    for i in 0..MAX_VARS {
        let roll = rng.below(8);
        env[i] = if roll == 0 {
            RegionSet::new()
        } else if roll == 1 && i > 0 {
            env[rng.below(i as u64) as usize].clone()
        } else {
            // About half the shared pool, plus a few private regions.
            let mut regions: Vec<_> = pool.iter().copied().filter(|_| rng.below(2) == 0).collect();
            for _ in 0..rng.below(4) {
                let l = rng.below(48) as u32;
                regions.push(region(l, l + rng.below(9) as u32));
            }
            RegionSet::from_regions(regions)
        };
    }
    env
}

/// Verifies `rule` against the naive oracle: for `rounds` seeded random
/// assignments, `lhs` and `rhs` must evaluate to byte-identical sets
/// under **both** [`NAIVE`] and [`FAST`]. Returns `false` at the first
/// divergence. This is the protocol both the synthesizer and the
/// regeneration test run; the planner only applies rules that shipped
/// through it.
pub fn verify_rule(rule: &Rule, seed: u64, rounds: usize) -> bool {
    verify_identity(&rule.lhs, &rule.rhs, seed, rounds)
}

/// [`verify_rule`] over bare patterns — the entry point the synthesizer
/// uses before a conjecture has a name.
pub fn verify_identity(lhs: &Pat, rhs: &Pat, seed: u64, rounds: usize) -> bool {
    let mut rng = SplitMix64(seed ^ 0xA076_1D64_78BD_642F);
    for _ in 0..rounds {
        let env = random_env(&mut rng);
        let l_naive = eval_pat(lhs, &env, &NAIVE);
        let r_naive = eval_pat(rhs, &env, &NAIVE);
        if l_naive != r_naive {
            return false;
        }
        let l_fast = eval_pat(lhs, &env, &FAST);
        let r_fast = eval_pat(rhs, &env, &FAST);
        if l_fast != l_naive || r_fast != r_naive {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::NameId;

    #[test]
    fn shipped_rules_parse_and_are_plentiful() {
        let rules = verified_rules();
        assert!(
            rules.len() >= 10,
            "need ≥ 10 shipped identities, got {}",
            rules.len()
        );
        assert_eq!(rules_version(), 1);
        // Names are unique.
        let mut names: Vec<_> = rules.iter().map(|r| r.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), rules.len());
    }

    #[test]
    fn every_shipped_rule_verifies() {
        // Cheap smoke pass; the full-depth run lives in the tr-ext
        // regeneration test.
        for rule in verified_rules() {
            assert!(verify_rule(rule, 0x5EED, 48), "rule failed: {}", rule.name);
        }
    }

    #[test]
    fn strict_inclusion_reflexivity_is_rejected() {
        // `?a ⊂ ?a == ?a` is false under the paper's strict inclusion:
        // the verifier must catch it (on an aliased/self assignment).
        let bogus = Rule {
            name: "bogus-in-refl",
            lhs: Pat::bin(BinOp::IncludedIn, Pat::var(0), Pat::var(0)),
            rhs: Pat::var(0),
        };
        assert!(!verify_rule(&bogus, 0x5EED, 128));
        let bogus2 = Rule {
            name: "bogus-cont-refl",
            lhs: Pat::bin(BinOp::Including, Pat::var(0), Pat::var(0)),
            rhs: Pat::var(0),
        };
        assert!(!verify_rule(&bogus2, 0x5EED, 128));
    }

    #[test]
    fn match_and_instantiate_round_trip() {
        // (R0 ⊂ R1) ∩ (R0 ⊂ R2) matches in-fuse and rewrites to
        // (R0 ⊂ R1) ⊂ R2.
        let (a, b, c) = (
            Expr::name(NameId::from_index(0)),
            Expr::name(NameId::from_index(1)),
            Expr::name(NameId::from_index(2)),
        );
        let e = a
            .clone()
            .included_in(b.clone())
            .intersect(a.clone().included_in(c.clone()));
        let fuse = verified_rules()
            .iter()
            .find(|r| r.name == "in-fuse")
            .unwrap();
        let out = rewrite_root(&e, &fuse.lhs, &fuse.rhs).expect("in-fuse should match");
        assert_eq!(out, a.clone().included_in(b).included_in(c));
        // And the reverse direction un-fuses it.
        let back = rewrite_root(&out, &fuse.rhs, &fuse.lhs).expect("reverse should match");
        assert_eq!(back, e);
        // A repeated metavariable must not match distinct operands.
        let distinct = a.clone().union(Expr::name(NameId::from_index(1)));
        let idem = verified_rules()
            .iter()
            .find(|r| r.name == "union-idem")
            .unwrap();
        assert!(rewrite_root(&distinct, &idem.lhs, &idem.rhs).is_none());
        assert!(rewrite_root(&a.clone().union(a.clone()), &idem.lhs, &idem.rhs).is_some());
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse_rules("rule-a (?a ∪ ?a) == ?a").is_err()); // no colon
        assert!(parse_rules("r: (?a ∪ ?a) = ?a").is_err()); // no ==
        assert!(parse_rules("r: (?a ∪ ?b) == ?c").is_err()); // unbound rhs var
        assert!(parse_rules("r: ?a == ?a").is_err()); // identical sides
        assert!(parse_rules("r: (?a ∪ ?d) == ?a").is_err()); // unknown var
        assert!(parse_rules("r: (?a ∪ ?a == ?a").is_err()); // unbalanced
        assert!(parse_rules("version 1\n# only comments").is_err()); // empty
    }

    #[test]
    fn pattern_display_matches_file_format() {
        let fuse = verified_rules()
            .iter()
            .find(|r| r.name == "in-fuse")
            .unwrap();
        assert_eq!(fuse.lhs.to_string(), "((?a ⊂ ?b) ∩ (?a ⊂ ?c))");
        assert_eq!(fuse.rhs.to_string(), "((?a ⊂ ?b) ⊂ ?c)");
    }
}
