//! The cost-based planner: cardinality statistics, a cost model over
//! lowered [`Plan`] DAGs, rewrite search over the verified rule set, and
//! per-node segmentation choice.
//!
//! Pipeline position: the engine lowers `parse → RIG-intercept →`
//! **`cost::optimize`** `→ Plan → exec`. [`optimize`] canonicalizes
//! commutative operands (cheaper side first) and then greedily applies
//! rules from [`crate::rules::verified_rules`] — in either direction, at
//! any position — as long as the model predicts a strictly cheaper plan.
//! Because every rule shipped through the oracle-verification protocol,
//! a bad estimate can only cost time, never correctness; the adversarial
//! "stats lie" test in `tests/` pins that down.
//!
//! Costs are coarse by design: nanosecond-scale per-element coefficients
//! for merge/sweep/select kernels, a per-node overhead, and a per-segment
//! overhead for the segmented kernels. The model only has to *rank*
//! candidate plans (and decide when segmentation pays), not predict wall
//! time — the `plan_quality` gate bench holds it to "never slower than
//! structural lowering" on the tracked suite.

use crate::expr::{BinOp, Expr};
use crate::instance::Instance;
use crate::plan::{NodeId, Plan, PlanOp};
use crate::rules::{self, Rule};
use crate::schema::NameId;
use crate::seg::{self, Corpus};
use crate::word::WordIndex;
use std::sync::{Arc, OnceLock};

/// `plan.*` counter handles for the planner.
struct CostMetrics {
    /// `plan.rewrites_applied`: rule applications accepted by the search.
    rewrites_applied: Arc<tr_obs::Counter>,
    /// `plan.cost_estimated_ns`: summed model cost of chosen plans.
    cost_estimated_ns: Arc<tr_obs::Counter>,
}

impl CostMetrics {
    fn get() -> &'static CostMetrics {
        static METRICS: OnceLock<CostMetrics> = OnceLock::new();
        METRICS.get_or_init(|| CostMetrics {
            rewrites_applied: tr_obs::counter("plan.rewrites_applied"),
            cost_estimated_ns: tr_obs::counter("plan.cost_estimated_ns"),
        })
    }
}

/// How the engine turns expressions into plans.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PlannerMode {
    /// Lower the expression as written (the historical behavior).
    Structural,
    /// Rewrite via [`optimize`] and choose per-node segmentation before
    /// lowering. The default.
    #[default]
    CostBased,
}

/// Per-name per-segment cardinalities — the planner's view of the data.
///
/// Derived from the store `Manifest` (whose per-segment counts exist for
/// exactly this purpose) when a document is opened from disk, or
/// recomputed from the instance via [`Stats::from_instance`] on builds
/// and after live mutation.
#[derive(Clone, Debug, Default)]
pub struct Stats {
    /// `per_name[name][segment]` = number of regions of that name whose
    /// left endpoint falls in that segment.
    per_name: Vec<Vec<u64>>,
    /// Document length in bytes (drives nothing yet beyond reporting).
    text_bytes: u64,
    /// Assumed fraction of regions surviving a `σ_p` selection when no
    /// better information exists.
    select_selectivity: f64,
}

impl Stats {
    /// Builds statistics from manifest-shaped counts: one row per name,
    /// one column per segment.
    pub fn from_counts(per_name: Vec<Vec<u64>>, text_bytes: u64) -> Stats {
        Stats {
            per_name,
            text_bytes,
            select_selectivity: DEFAULT_SELECT_SELECTIVITY,
        }
    }

    /// Recomputes statistics from a live instance, splitting each name's
    /// regions at the corpus segment boundaries (same definition as the
    /// stored manifest, so both sources agree on identical data).
    pub fn from_instance<W: WordIndex>(inst: &Instance<W>, corpus: &Corpus) -> Stats {
        let bounds = corpus.bounds();
        let per_name = (0..inst.schema().len())
            .map(|i| {
                let set = inst.regions_of(NameId::from_index(i));
                let ps = seg::split_points(set, bounds);
                ps.windows(2).map(|w| (w[1] - w[0]) as u64).collect()
            })
            .collect();
        Stats {
            per_name,
            text_bytes: bounds.last().copied().unwrap_or(0) as u64,
            select_selectivity: DEFAULT_SELECT_SELECTIVITY,
        }
    }

    /// Total cardinality of a name (0 for names the stats never saw).
    pub fn name_card(&self, id: NameId) -> u64 {
        self.per_name
            .get(id.index())
            .map(|segs| segs.iter().sum())
            .unwrap_or(0)
    }

    /// Number of segments the statistics are split into (1 if empty).
    pub fn num_segments(&self) -> usize {
        self.per_name.first().map_or(1, |s| s.len().max(1))
    }

    /// Document length in bytes.
    pub fn text_bytes(&self) -> u64 {
        self.text_bytes
    }

    /// Overrides the assumed selection selectivity (tests, tuning).
    pub fn with_select_selectivity(mut self, s: f64) -> Stats {
        self.select_selectivity = s.clamp(0.0, 1.0);
        self
    }
}

/// Default assumed fraction of regions surviving a `σ_p` selection.
const DEFAULT_SELECT_SELECTIVITY: f64 = 0.1;

/// Per-element nanosecond coefficients for the operator kernels.
///
/// Calibrated coarsely against the gate bench's 200k-element kernel
/// timings; only relative magnitudes matter for plan ranking.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// Per input element of a sorted merge (∪ ∩ −).
    pub merge_ns: f64,
    /// Per input element of a structural sweep (⊃ ⊂ < >), covering both
    /// the probe side and the monotone window advance.
    pub sweep_ns: f64,
    /// Per input element of a `σ_p` word-index probe.
    pub select_ns: f64,
    /// Fixed overhead per plan node (scheduling, allocation).
    pub node_ns: f64,
    /// Fixed overhead per segment when a node runs the segmented kernels
    /// (split-point search, per-segment dispatch, ordered merge).
    pub segment_ns: f64,
    /// Fixed overhead per *remote* shard when a query scatters across
    /// backends (one protocol round trip: connect reuse, JSON framing,
    /// result deserialization). Same role as `segment_ns`, three orders
    /// of magnitude larger — which is why a router forwards small
    /// queries whole and only fans out work that dwarfs the wire (see
    /// [`choose_fanout`]).
    pub remote_fanout_ns: f64,
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel {
            merge_ns: 2.0,
            sweep_ns: 4.0,
            select_ns: 30.0,
            node_ns: 400.0,
            segment_ns: 900.0,
            remote_fanout_ns: 200_000.0,
        }
    }
}

/// The model's verdict on one lowered plan.
#[derive(Clone, Debug, Default)]
pub struct PlanEstimate {
    /// Estimated output cardinality per node.
    pub cards: Vec<f64>,
    /// Estimated serial evaluation cost per node, in nanoseconds.
    pub node_ns: Vec<f64>,
    /// Sum of `node_ns` — the plan's total estimated cost.
    pub total_ns: f64,
}

impl PlanEstimate {
    /// Estimated cardinality of node `id`, rounded for reporting.
    pub fn card(&self, id: NodeId) -> u64 {
        self.cards.get(id).map_or(0, |&c| c.round() as u64)
    }
}

/// Estimates output cardinalities and evaluation cost for every node of
/// `plan`. Hash-consing has already collapsed shared sub-expressions, so
/// summing per-node costs naturally credits reuse: a sub-expression two
/// queries share is paid for once.
pub fn estimate(plan: &Plan, stats: &Stats, model: &CostModel) -> PlanEstimate {
    let n = plan.len();
    let mut cards = vec![0.0f64; n];
    let mut node_ns = vec![0.0f64; n];
    for id in 0..n {
        let (card, ns) = match plan.op(id) {
            PlanOp::Name(name) => (stats.name_card(*name) as f64, model.node_ns),
            PlanOp::Select(_, c) => {
                let child = cards[*c];
                (
                    child * stats.select_selectivity,
                    model.node_ns + model.select_ns * child,
                )
            }
            PlanOp::Bin(op, l, r) => {
                let (lc, rc) = (cards[*l], cards[*r]);
                // Hash-consing makes identical sub-expressions share a
                // node id, so `l == r` is a *proof* the operands are
                // equal — the set-algebra identities then give exact
                // cardinalities. Without this the independence-style
                // guesses below would rate `A ∩ A` smaller than `A`,
                // and the rewrite search would chase that phantom win
                // through reverse idempotence.
                let card = if l == r {
                    match op {
                        BinOp::Union | BinOp::Intersect => lc,
                        BinOp::Diff => 0.0,
                        // Strict inclusion/ordering is irreflexive, but
                        // distinct regions of one set can still nest or
                        // precede each other; keep the subset guess.
                        BinOp::Including | BinOp::IncludedIn | BinOp::Before | BinOp::After => {
                            0.5 * lc
                        }
                    }
                } else {
                    match op {
                        BinOp::Union => lc + rc,
                        BinOp::Intersect => 0.5 * lc.min(rc),
                        BinOp::Diff => 0.75 * lc,
                        // Structural filters return a subset of the left
                        // operand; assume half survives.
                        BinOp::Including | BinOp::IncludedIn | BinOp::Before | BinOp::After => {
                            0.5 * lc
                        }
                    }
                };
                let per_elem = match op {
                    BinOp::Union | BinOp::Intersect | BinOp::Diff => model.merge_ns,
                    _ => model.sweep_ns,
                };
                (card, model.node_ns + per_elem * (lc + rc))
            }
        };
        cards[id] = card;
        node_ns[id] = ns;
    }
    let total_ns = node_ns.iter().sum();
    PlanEstimate {
        cards,
        node_ns,
        total_ns,
    }
}

/// Lowers `e` into a fresh plan and returns its total estimated cost —
/// the comparison key of the rewrite search.
pub fn estimate_expr(e: &Expr, stats: &Stats, model: &CostModel) -> f64 {
    estimate_expr_full(e, stats, model).1
}

/// Like [`estimate_expr`], also returning the root's estimated output
/// cardinality (the commutative-ordering key).
fn estimate_expr_full(e: &Expr, stats: &Stats, model: &CostModel) -> (f64, f64) {
    let mut plan = Plan::new();
    let root = plan.lower(e);
    let est = estimate(&plan, stats, model);
    (est.cards[root], est.total_ns)
}

/// One rule application the search accepted, for `explain`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AppliedRewrite {
    /// The rule's name in `RULES.txt`.
    pub rule: &'static str,
    /// `true` when applied left→right as written, `false` for the
    /// reverse direction.
    pub forward: bool,
}

/// Cap on accepted rewrite steps per query — the greedy search strictly
/// decreases cost so it terminates anyway, but query expressions are
/// small and a runaway model should not stall the engine.
const MAX_REWRITE_STEPS: usize = 24;

/// Relative improvement a candidate must show to be accepted; guards
/// against float-noise oscillation between equal-cost forms.
const MIN_GAIN: f64 = 1e-6;

/// Rewrites `e` into the cheapest form the model can find, returning the
/// rewritten expression and the rule applications taken (in order).
///
/// The search is greedy steepest-descent: canonicalize commutative
/// operands (cheaper side left), then repeatedly try every verified rule
/// in both directions at every position, lower each candidate into a
/// fresh hash-consed plan, and accept the best strict improvement.
/// Greediness is deliberate — the rule set is small and query
/// expressions are shallow, so the useful composites (fuse after
/// commute, un-distribute after reorder) are within reach, and strict
/// descent guarantees termination.
pub fn optimize(e: &Expr, stats: &Stats, model: &CostModel) -> (Expr, Vec<AppliedRewrite>) {
    let m = CostMetrics::get();
    let mut applied = Vec::new();
    let mut current = canonicalize_commutative(e, stats, model, &mut applied);
    let mut current_cost = estimate_expr(&current, stats, model);
    while applied.len() < MAX_REWRITE_STEPS {
        let mut best: Option<(Expr, f64, AppliedRewrite)> = None;
        for rule in rules::verified_rules() {
            for forward in [true, false] {
                let (lhs, rhs) = if forward {
                    (&rule.lhs, &rule.rhs)
                } else {
                    (&rule.rhs, &rule.lhs)
                };
                // Never apply a direction that *duplicates* a bound
                // sub-expression (reverse idempotence, un-absorption…):
                // duplication is only ever predicted to win when the
                // estimator is wrong about correlated operands, and it
                // grows the expression without bound. The useful
                // rewrites — commute, fuse, reassociate — copy nothing.
                if duplicates_vars(lhs, rhs) {
                    continue;
                }
                for candidate in rewrites_anywhere(&current, lhs, rhs) {
                    let cost = estimate_expr(&candidate, stats, model);
                    if cost < current_cost * (1.0 - MIN_GAIN)
                        && best.as_ref().is_none_or(|(_, b, _)| cost < *b)
                    {
                        best = Some((
                            candidate,
                            cost,
                            AppliedRewrite {
                                rule: rule.name,
                                forward,
                            },
                        ));
                    }
                }
            }
        }
        match best {
            Some((next, cost, step)) => {
                current = next;
                current_cost = cost;
                applied.push(step);
            }
            None => break,
        }
    }
    m.rewrites_applied.add(applied.len() as u64);
    m.cost_estimated_ns.add(current_cost.max(0.0) as u64);
    (current, applied)
}

/// Orders the operands of every commutative node (∪ ∩) cheapest-side
/// first — a stable canonical form, justified by the verified
/// `union-comm` / `intersect-comm` rules and recorded under their names.
fn canonicalize_commutative(
    e: &Expr,
    stats: &Stats,
    model: &CostModel,
    applied: &mut Vec<AppliedRewrite>,
) -> Expr {
    match e {
        Expr::Name(_) => e.clone(),
        Expr::Select(p, inner) => Expr::Select(
            p.clone(),
            Box::new(canonicalize_commutative(inner, stats, model, applied)),
        ),
        Expr::Bin(op, l, r) => {
            let l = canonicalize_commutative(l, stats, model, applied);
            let r = canonicalize_commutative(r, stats, model, applied);
            if matches!(op, BinOp::Union | BinOp::Intersect) {
                // Smaller estimated cardinality first (the downstream
                // consumer's scan starts from the left operand); cost,
                // then display form, break ties deterministically.
                let key = |e: &Expr| {
                    let (card, ns) = estimate_expr_full(e, stats, model);
                    (card, ns)
                };
                let ((lcard, lns), (rcard, rns)) = (key(&l), key(&r));
                if (lcard, lns) > (rcard, rns)
                    || ((lcard, lns) == (rcard, rns) && l.to_string() > r.to_string())
                {
                    applied.push(AppliedRewrite {
                        rule: match op {
                            BinOp::Union => "union-comm",
                            _ => "intersect-comm",
                        },
                        forward: true,
                    });
                    return Expr::bin(*op, r, l);
                }
            }
            Expr::bin(*op, l, r)
        }
    }
}

/// True when rewriting `from → to` would duplicate some metavariable —
/// i.e. a variable occurs more often in `to` than in `from`.
fn duplicates_vars(from: &rules::Pat, to: &rules::Pat) -> bool {
    fn occurrences(p: &rules::Pat, counts: &mut [u32; 8]) {
        match p {
            rules::Pat::Var(i) => counts[*i as usize % 8] += 1,
            rules::Pat::Bin(_, l, r) => {
                occurrences(l, counts);
                occurrences(r, counts);
            }
        }
    }
    let (mut f, mut t) = ([0u32; 8], [0u32; 8]);
    occurrences(from, &mut f);
    occurrences(to, &mut t);
    f.iter().zip(&t).any(|(a, b)| b > a)
}

/// Every expression obtainable from `e` by one application of
/// `lhs → rhs` at any position.
fn rewrites_anywhere(e: &Expr, lhs: &rules::Pat, rhs: &rules::Pat) -> Vec<Expr> {
    let mut out = Vec::new();
    if let Some(root) = rules::rewrite_root(e, lhs, rhs) {
        out.push(root);
    }
    match e {
        Expr::Name(_) => {}
        Expr::Select(p, inner) => {
            for rewritten in rewrites_anywhere(inner, lhs, rhs) {
                out.push(Expr::Select(p.clone(), Box::new(rewritten)));
            }
        }
        Expr::Bin(op, l, r) => {
            for rewritten in rewrites_anywhere(l, lhs, rhs) {
                out.push(Expr::bin(*op, rewritten, (**r).clone()));
            }
            for rewritten in rewrites_anywhere(r, lhs, rhs) {
                out.push(Expr::bin(*op, (**l).clone(), rewritten));
            }
        }
    }
    out
}

/// Picks, per plan node, whether the segmented kernels pay off: `true`
/// when the parallel saving the model predicts (serial cost minus its
/// `1/S` share) exceeds the per-segment dispatch overhead. `Name` nodes
/// are never segmented — they are zero-copy handle clones. Used with
/// [`crate::exec::execute_with_choices`]; any vector is correct, this
/// one is just fast.
pub fn choose_segmentation(
    plan: &Plan,
    est: &PlanEstimate,
    num_segments: usize,
    model: &CostModel,
) -> Vec<bool> {
    (0..plan.len())
        .map(|id| {
            if num_segments <= 1 || matches!(plan.op(id), PlanOp::Name(_)) {
                return false;
            }
            fanout_pays(est.node_ns[id], num_segments, model.segment_ns)
        })
        .collect()
}

/// The one fan-out law both tiers share: splitting `serial_ns` of work
/// across `shards` executors, each charging `per_shard_ns` of fixed
/// dispatch overhead, pays off when the parallel saving
/// `serial · (1 − 1/s)` exceeds the dispatch cost `per_shard · s`.
/// [`choose_segmentation`] instantiates it with
/// [`CostModel::segment_ns`] per local segment; [`choose_fanout`] with
/// [`CostModel::remote_fanout_ns`] per remote shard.
pub fn fanout_pays(serial_ns: f64, shards: usize, per_shard_ns: f64) -> bool {
    let s = shards.max(1) as f64;
    serial_ns * (1.0 - 1.0 / s) > per_shard_ns * s
}

/// Picks the scatter width for a remote fan-out: the largest width
/// `≤ max_shards` whose predicted parallel saving still beats the
/// per-shard remote overhead, or `1` (forward whole, no scatter) when
/// fanning out never pays. `serial_ns` is the caller's estimate of the
/// query's single-node cost — a router without plan statistics can use
/// a bytes-proportional proxy; only the ranking matters.
pub fn choose_fanout(serial_ns: f64, max_shards: usize, model: &CostModel) -> usize {
    (2..=max_shards)
        .rev()
        .find(|&s| fanout_pays(serial_ns, s, model.remote_fanout_ns))
        .unwrap_or(1)
}

/// The full verified-rule rewrite set, re-exported for callers that
/// report on it (`explain`, docs, tests).
pub fn rule_set() -> &'static [Rule] {
    rules::verified_rules()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceBuilder;
    use crate::region::region;
    use crate::schema::Schema;

    /// A: 64 wide regions, B: 8, C: 2 — skewed so ordering matters.
    fn skewed() -> (Schema, Instance) {
        let schema = Schema::new(["A", "B", "C"]);
        let mut b = InstanceBuilder::new(schema.clone());
        let mut pos = 0u32;
        for i in 0..64u32 {
            b = b.add("A", region(pos, pos + 3));
            if i % 8 == 0 {
                b = b.add("B", region(pos, pos + 7));
            }
            if i % 32 == 0 {
                b = b.add("C", region(pos, pos + 9));
            }
            pos += 10;
        }
        (schema, b.build_valid())
    }

    fn stats_for(inst: &Instance, segments: usize) -> Stats {
        let corpus = Corpus::from_instance(inst, 640, segments);
        Stats::from_instance(inst, &corpus)
    }

    #[test]
    fn stats_count_per_name() {
        let (schema, inst) = skewed();
        let stats = stats_for(&inst, 4);
        assert_eq!(stats.name_card(schema.expect_id("A")), 64);
        assert_eq!(stats.name_card(schema.expect_id("B")), 8);
        assert_eq!(stats.name_card(schema.expect_id("C")), 2);
        assert_eq!(stats.num_segments(), 4);
        // Per-segment counts sum to the totals regardless of splits.
        assert_eq!(
            stats_for(&inst, 1).name_card(schema.expect_id("A")),
            stats_for(&inst, 16).name_card(schema.expect_id("A")),
        );
    }

    #[test]
    fn estimates_track_operand_sizes() {
        let (schema, inst) = skewed();
        let stats = stats_for(&inst, 1);
        let model = CostModel::default();
        let a = Expr::name(schema.expect_id("A"));
        let c = Expr::name(schema.expect_id("C"));
        let big = a.clone().including(a.clone());
        let small = c.clone().including(c.clone());
        assert!(
            estimate_expr(&big, &stats, &model) > estimate_expr(&small, &stats, &model),
            "bigger operands must cost more"
        );
        // Cardinality propagates: root of A ∪ C estimates 64 + 2.
        let mut plan = Plan::new();
        let root = plan.lower(&a.clone().union(c));
        let est = estimate(&plan, &stats, &model);
        assert_eq!(est.card(root), 66);
    }

    #[test]
    fn self_application_is_never_a_predicted_win() {
        let (schema, inst) = skewed();
        let stats = stats_for(&inst, 1);
        let model = CostModel::default();
        let a = Expr::name(schema.expect_id("A"));
        // Hash-consing gives identical operands one node id, and the
        // estimator is exact there: A ∩ A and A ∪ A are just A, and
        // A − A is empty.
        let card_of = |e: &Expr| {
            let mut plan = Plan::new();
            let root = plan.lower(e);
            estimate(&plan, &stats, &model).card(root)
        };
        assert_eq!(card_of(&a.clone().intersect(a.clone())), 64);
        assert_eq!(card_of(&a.clone().union(a.clone())), 64);
        assert_eq!(card_of(&a.clone().diff(a.clone())), 0);
        // So expanding a select's child through reverse idempotence can
        // never look cheaper, and the search leaves the query alone —
        // this pins the fix for a planner that once rewrote σ(Var) into
        // σ(Var ∩ Var ∩ …) chasing a phantom cardinality win.
        let e = a.clone().select("x");
        let (opt, applied) = optimize(&e, &stats, &model);
        assert_eq!(opt.to_string(), e.to_string());
        assert!(applied.is_empty(), "no phantom rewrites: {applied:?}");
    }

    #[test]
    fn optimizer_fuses_shared_filter_intersections() {
        let (schema, inst) = skewed();
        let stats = stats_for(&inst, 1);
        let model = CostModel::default();
        let a = Expr::name(schema.expect_id("A"));
        let b = Expr::name(schema.expect_id("B"));
        let c = Expr::name(schema.expect_id("C"));
        // (A ⊃ B) ∩ (A ⊃ C): two sweeps over all of A plus a merge;
        // fusing to (A ⊃ B) ⊃ C (or the commuted order) must win.
        let e = a
            .clone()
            .including(b.clone())
            .intersect(a.clone().including(c.clone()));
        let before = estimate_expr(&e, &stats, &model);
        let (opt, applied) = optimize(&e, &stats, &model);
        let after = estimate_expr(&opt, &stats, &model);
        assert!(after < before, "optimization must reduce estimated cost");
        assert!(
            applied.iter().any(|r| r.rule == "cont-fuse"),
            "expected cont-fuse in {applied:?}"
        );
        // The rewritten expression is still the same query.
        assert_eq!(crate::eval(&opt, &inst), crate::eval(&e, &inst));
    }

    #[test]
    fn optimizer_leaves_cheap_plans_alone() {
        let (schema, inst) = skewed();
        let stats = stats_for(&inst, 1);
        let model = CostModel::default();
        let c = Expr::name(schema.expect_id("C"));
        let b = Expr::name(schema.expect_id("B"));
        // C ⊂ B is already minimal: no rewrite applies profitably.
        let e = c.included_in(b);
        let (opt, applied) = optimize(&e, &stats, &model);
        assert_eq!(opt, e);
        assert!(applied.is_empty(), "unexpected rewrites: {applied:?}");
    }

    #[test]
    fn commutative_operands_order_cheap_first() {
        let (schema, inst) = skewed();
        let stats = stats_for(&inst, 1);
        let model = CostModel::default();
        let a = Expr::name(schema.expect_id("A"));
        let c = Expr::name(schema.expect_id("C"));
        let (opt, applied) = optimize(&a.clone().union(c.clone()), &stats, &model);
        assert_eq!(opt, c.union(a), "cheaper operand moves left");
        assert!(applied.iter().any(|r| r.rule == "union-comm"));
    }

    #[test]
    fn segmentation_choice_scales_with_cost() {
        let (schema, inst) = skewed();
        let stats = stats_for(&inst, 8);
        let model = CostModel::default();
        let a = Expr::name(schema.expect_id("A"));
        let mut plan = Plan::new();
        let root = plan.lower(&a.clone().including(a.clone()));
        let mut est = estimate(&plan, &stats, &model);
        // Real estimate for this small instance: nothing worth segmenting.
        let choices = choose_segmentation(&plan, &est, 8, &model);
        assert!(!choices[root]);
        assert!(!choices.iter().any(|&c| c), "tiny plans stay serial");
        // Inflate the root's cost: now (only) the root is worth it.
        est.node_ns[root] = 1e9;
        let choices = choose_segmentation(&plan, &est, 8, &model);
        assert!(choices[root]);
        assert!(!choices[0], "Name leaves never segment");
        // Single segment: never.
        let choices = choose_segmentation(&plan, &est, 1, &model);
        assert!(!choices.iter().any(|&c| c));
    }

    #[test]
    fn remote_fanout_needs_much_more_work_than_segmentation() {
        let model = CostModel::default();
        // Work that easily justifies 8 local segments is still far below
        // the wire's break-even: the same law, a much bigger coefficient.
        let serial = 5e5;
        assert!(fanout_pays(serial, 8, model.segment_ns));
        assert_eq!(choose_fanout(serial, 8, &model), 1, "stays single-node");
        // Work that dwarfs the wire scatters as wide as allowed.
        assert_eq!(choose_fanout(1e9, 3, &model), 3);
        // Degenerate inputs stay sane.
        assert_eq!(choose_fanout(0.0, 4, &model), 1);
        assert_eq!(choose_fanout(1e9, 1, &model), 1);
        assert!(!fanout_pays(1e9, 1, model.segment_ns), "one shard never");
    }

    #[test]
    fn rewritten_plans_agree_with_oracle_under_any_stats() {
        // Even with absurd statistics the optimizer output must stay
        // semantically identical — rules are verified, stats only rank.
        let (schema, inst) = skewed();
        let model = CostModel::default();
        let a = Expr::name(schema.expect_id("A"));
        let b = Expr::name(schema.expect_id("B"));
        let c = Expr::name(schema.expect_id("C"));
        let exprs = [
            a.clone()
                .including(b.clone())
                .intersect(a.clone().including(c.clone())),
            a.clone()
                .included_in(b.clone())
                .union(a.clone().included_in(c.clone())),
            a.clone().union(b.clone()).before(c.clone()),
            a.clone().diff(a.clone().diff(b.clone())),
        ];
        let lying = Stats::from_counts(vec![vec![1], vec![1_000_000], vec![3]], 640);
        let honest = stats_for(&inst, 3);
        for stats in [&lying, &honest] {
            for e in &exprs {
                let (opt, _) = optimize(e, stats, &model);
                assert_eq!(
                    crate::eval_naive(&opt, &inst),
                    crate::eval_naive(e, &inst),
                    "rewrite changed semantics of {e}"
                );
            }
        }
    }
}
