//! The word index abstraction (Definition 2.1).
//!
//! The paper deliberately abstracts over the pattern language: a word index
//! is a binary predicate `W(r, p)` that holds iff the text stored in region
//! `r` contains the pattern `p`. We mirror that with the [`WordIndex`]
//! trait. Two implementations ship with the workspace:
//!
//! * [`MatchPointIndex`] (here): an explicit table of match points per
//!   pattern, convenient for tests, generators, and the FMFT model
//!   correspondence (where pattern truth is just another monadic predicate).
//! * `tr_text::SuffixWordIndex`: a suffix-array-backed index over real text,
//!   the PAT-engine substitute.

use crate::region::{Pos, Region};
use crate::set::RegionSet;
use std::collections::BTreeMap;

/// A word index: decides whether the text of a region contains a pattern.
pub trait WordIndex {
    /// `W(r, p)`: true iff region `r`'s text contains pattern `p`.
    fn matches(&self, r: Region, pattern: &str) -> bool;

    /// The occurrences of `pattern` as regions — PAT's *match point sets*,
    /// the second set type of the original algebra (Section 2.1). Indexes
    /// that only answer the boolean `W(r, p)` (like
    /// [`crate::ExplicitWordIndex`]) keep the default empty answer;
    /// positional indexes ([`MatchPointIndex`], the suffix-array index in
    /// `tr-text`) override it.
    fn occurrence_regions(&self, _pattern: &str) -> RegionSet {
        RegionSet::new()
    }
}

/// The trivial word index under which no pattern ever matches. Useful for
/// purely structural instances.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EmptyWordIndex;

impl WordIndex for EmptyWordIndex {
    fn matches(&self, _r: Region, _pattern: &str) -> bool {
        false
    }
}

/// A word index backed by an explicit table of *match points*: for each
/// pattern, the sorted list of `(position, length)` pairs at which it occurs
/// in the text. `W(r, p)` holds iff some occurrence of `p` lies entirely
/// inside `r`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MatchPointIndex {
    /// pattern → sorted (start, length) occurrences.
    occurrences: BTreeMap<String, Vec<(Pos, Pos)>>,
}

impl MatchPointIndex {
    /// An index with no occurrences.
    pub fn new() -> MatchPointIndex {
        MatchPointIndex::default()
    }

    /// Records an occurrence of `pattern` covering `len` positions starting
    /// at `start`. `len` must be at least 1.
    pub fn add_occurrence(&mut self, pattern: &str, start: Pos, len: Pos) {
        assert!(len >= 1, "occurrences cover at least one position");
        let v = self.occurrences.entry(pattern.to_owned()).or_default();
        match v.binary_search(&(start, len)) {
            Ok(_) => {}
            Err(i) => v.insert(i, (start, len)),
        }
    }

    /// Records a length-1 occurrence (a "match point" in PAT terminology).
    pub fn add_point(&mut self, pattern: &str, at: Pos) {
        self.add_occurrence(pattern, at, 1);
    }

    /// The sorted occurrences of `pattern`, if any.
    pub fn occurrences(&self, pattern: &str) -> &[(Pos, Pos)] {
        self.occurrences.get(pattern).map_or(&[], Vec::as_slice)
    }

    /// Patterns known to this index, in sorted order.
    pub fn patterns(&self) -> impl Iterator<Item = &str> {
        self.occurrences.keys().map(String::as_str)
    }
}

/// A word index given by an explicit truth table over `(region, pattern)`
/// pairs. Unlisted pairs are false.
///
/// Definition 2.1 allows `W` to be an *arbitrary* boolean mapping — in
/// particular it need not be monotone in the region (a pattern can hold on
/// a child region but not its parent, e.g. under exact-word or proximity
/// semantics). [`MatchPointIndex`] and the suffix-array index are always
/// monotone, so this type is what realizes arbitrary FMFT models as
/// instances (Definition 3.2).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExplicitWordIndex {
    truths: std::collections::BTreeSet<(Region, String)>,
}

impl ExplicitWordIndex {
    /// An index where every `W(r, p)` is false.
    pub fn new() -> ExplicitWordIndex {
        ExplicitWordIndex::default()
    }

    /// Declares `W(r, pattern)` true.
    pub fn set(&mut self, r: Region, pattern: &str) {
        self.truths.insert((r, pattern.to_owned()));
    }

    /// Number of true entries.
    pub fn len(&self) -> usize {
        self.truths.len()
    }

    /// True if no entry is set.
    pub fn is_empty(&self) -> bool {
        self.truths.is_empty()
    }
}

impl WordIndex for ExplicitWordIndex {
    fn matches(&self, r: Region, pattern: &str) -> bool {
        self.truths
            .range((r, String::new())..)
            .take_while(|(rr, _)| *rr == r)
            .any(|(_, pp)| pp == pattern)
    }
}

impl WordIndex for MatchPointIndex {
    fn occurrence_regions(&self, pattern: &str) -> RegionSet {
        // Straight into columnar storage: no intermediate `Vec<Region>`.
        let occ = self.occurrences(pattern);
        let mut lefts = Vec::with_capacity(occ.len());
        let mut rights = Vec::with_capacity(occ.len());
        for &(start, len) in occ.iter() {
            lefts.push(start);
            rights.push(start + len - 1);
        }
        RegionSet::from_columns(lefts, rights)
    }

    fn matches(&self, r: Region, pattern: &str) -> bool {
        let Some(occ) = self.occurrences.get(pattern) else {
            return false;
        };
        // Occurrences are sorted by start; find the first with start >=
        // left(r) and check whether it fits inside r. Any occurrence fully
        // inside r must start at or after left(r); scanning forward from the
        // lower bound, the first candidates have the smallest ends.
        let from = occ.partition_point(|&(s, _)| s < r.left());
        occ[from..]
            .iter()
            .take_while(|&&(s, _)| s <= r.right())
            .any(|&(s, l)| s + l - 1 <= r.right())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::region;

    #[test]
    fn explicit_index_is_exact_and_non_monotone() {
        let mut w = ExplicitWordIndex::new();
        w.set(region(2, 5), "x");
        assert!(w.matches(region(2, 5), "x"));
        assert!(!w.matches(region(0, 9), "x"), "no upward closure");
        assert!(!w.matches(region(2, 5), "y"));
        assert!(!w.matches(region(2, 4), "x"));
        assert_eq!(w.len(), 1);
        assert!(!w.is_empty());
    }

    #[test]
    fn empty_index_never_matches() {
        assert!(!EmptyWordIndex.matches(region(0, 100), "x"));
    }

    #[test]
    fn match_requires_full_containment() {
        let mut w = MatchPointIndex::new();
        w.add_occurrence("var", 10, 3); // covers 10..=12
        assert!(w.matches(region(0, 20), "var"));
        assert!(w.matches(region(10, 12), "var"), "exact fit");
        assert!(
            !w.matches(region(0, 11), "var"),
            "occurrence truncated on the right"
        );
        assert!(
            !w.matches(region(11, 20), "var"),
            "occurrence truncated on the left"
        );
        assert!(!w.matches(region(0, 20), "other"));
    }

    #[test]
    fn multiple_occurrences() {
        let mut w = MatchPointIndex::new();
        w.add_point("x", 5);
        w.add_point("x", 50);
        assert!(w.matches(region(0, 10), "x"));
        assert!(w.matches(region(40, 60), "x"));
        assert!(!w.matches(region(10, 40), "x"));
    }

    #[test]
    fn occurrence_regions_are_match_point_sets() {
        let mut w = MatchPointIndex::new();
        w.add_occurrence("var", 10, 3);
        w.add_point("var", 20);
        assert_eq!(
            w.occurrence_regions("var").to_vec(),
            &[region(10, 12), region(20, 20)]
        );
        assert!(w.occurrence_regions("other").is_empty());
        assert!(EmptyWordIndex.occurrence_regions("var").is_empty());
        let mut e = ExplicitWordIndex::new();
        e.set(region(0, 5), "var");
        assert!(e.occurrence_regions("var").is_empty(), "boolean-only index");
    }

    #[test]
    fn duplicate_occurrence_is_deduped() {
        let mut w = MatchPointIndex::new();
        w.add_point("x", 5);
        w.add_point("x", 5);
        assert_eq!(w.occurrences("x"), &[(5, 1)]);
    }
}
