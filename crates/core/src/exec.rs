//! Executors for lowered [`Plan`]s: sequential and wave-parallel.
//!
//! Both executors evaluate every distinct plan node exactly once (the
//! [`ExecStats`] counter makes that observable). The expensive per-operand
//! structures (`MinRightRmq` / `PrefixMaxRight`) are memoized on each
//! operand's shared [`crate::set::RegionBuf`] (see
//! [`RegionSet::min_right_rmq`]), so they are built at most once per
//! buffer — shared not just across consumers within one plan, but across
//! every plan and batch probing the same base name. Base-name fetches
//! (`PlanOp::Name`) are zero-copy handle clones, counted by
//! `exec.base_zero_copy`.
//!
//! The parallel executor layers two kinds of parallelism:
//!
//! * **inter-node**: plan nodes whose children are complete are
//!   independent, so worker threads pull them from a shared ready queue
//!   (topological wave scheduling over the DAG);
//! * **intra-node**: inside a single big operator application the probe
//!   scan / merge is chunked across threads (see [`crate::par`]), with a
//!   sequential cutoff so small sets keep the single-threaded fast path.
//!
//! Parallel results are byte-identical to [`crate::eval()`]'s: every kernel
//! is a deterministic chunk-and-concatenate of the sequential one.

use crate::instance::Instance;
use crate::ops;
use crate::par::{self, Parallelism};
use crate::plan::{NodeId, Plan, PlanOp};
use crate::seg::{self, Corpus};
use crate::set::RegionSet;
use crate::word::WordIndex;
use crate::BinOp;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Instant;

/// Cached handles into the `tr_obs` metrics registry (one map probe per
/// process, then plain atomics on the hot path).
struct ExecMetrics {
    /// `exec.runs`: calls to [`execute`].
    runs: Arc<tr_obs::Counter>,
    /// `exec.nodes`: total plan nodes evaluated.
    nodes: Arc<tr_obs::Counter>,
    /// `exec.waves`: structural waves (DAG depth levels) scheduled.
    waves: Arc<tr_obs::Counter>,
    /// `exec.base_zero_copy`: base-name fetches served as zero-copy
    /// handle clones of the instance's buffer (i.e. every `Name` node —
    /// the counter makes "no region copies on the base-set path"
    /// observable and testable).
    base_zero_copy: Arc<tr_obs::Counter>,
    /// `exec.wall_ns`: wall time per [`execute`] call.
    wall_ns: Arc<tr_obs::Histogram>,
    /// `exec.wave.nodes`: nodes per structural wave.
    wave_nodes: Arc<tr_obs::Histogram>,
    /// `exec.kernel.<op>.ns`: per-operator-kernel evaluation time.
    kernels: [Arc<tr_obs::Histogram>; 9],
}

impl ExecMetrics {
    fn get() -> &'static ExecMetrics {
        static METRICS: OnceLock<ExecMetrics> = OnceLock::new();
        METRICS.get_or_init(|| ExecMetrics {
            runs: tr_obs::counter("exec.runs"),
            nodes: tr_obs::counter("exec.nodes"),
            waves: tr_obs::counter("exec.waves"),
            base_zero_copy: tr_obs::counter("exec.base_zero_copy"),
            wall_ns: tr_obs::histogram("exec.wall_ns"),
            wave_nodes: tr_obs::histogram("exec.wave.nodes"),
            kernels: KERNEL_NAMES.map(|k| tr_obs::histogram(&format!("exec.kernel.{k}.ns"))),
        })
    }
}

/// Kernel labels, indexed by [`kernel_index`].
const KERNEL_NAMES: [&str; 9] = [
    "name",
    "select",
    "union",
    "intersect",
    "diff",
    "including",
    "included_in",
    "before",
    "after",
];

fn kernel_index(op: &PlanOp) -> usize {
    match op {
        PlanOp::Name(_) => 0,
        PlanOp::Select(..) => 1,
        PlanOp::Bin(bin, ..) => match bin {
            BinOp::Union => 2,
            BinOp::Intersect => 3,
            BinOp::Diff => 4,
            BinOp::Including => 5,
            BinOp::IncludedIn => 6,
            BinOp::Before => 7,
            BinOp::After => 8,
        },
    }
}

/// Tuning for plan execution.
#[derive(Clone, Copy, Debug)]
pub struct ExecConfig {
    /// Worker threads for the DAG scheduler and operator kernels
    /// (`0` ⇒ all available cores, `1` ⇒ fully sequential).
    pub threads: usize,
    /// Minimum operand size before a kernel's scan/merge is split across
    /// threads; below it the sequential fast path runs unchanged.
    pub kernel_cutoff: usize,
}

impl ExecConfig {
    /// Fully sequential execution (still node-deduplicated and
    /// structure-sharing).
    pub fn sequential() -> ExecConfig {
        ExecConfig {
            threads: 1,
            kernel_cutoff: usize::MAX,
        }
    }

    /// The resolved number of worker threads.
    pub fn resolved_threads(&self) -> usize {
        if self.threads == 0 {
            par::available_threads()
        } else {
            self.threads
        }
    }

    fn parallelism(&self) -> Parallelism {
        Parallelism::new(self.resolved_threads(), self.kernel_cutoff)
    }
}

impl Default for ExecConfig {
    fn default() -> ExecConfig {
        ExecConfig {
            threads: 0,
            kernel_cutoff: par::DEFAULT_CUTOFF,
        }
    }
}

/// What an execution did — exposed so tests (and the engine's batch API)
/// can assert sharing: `nodes_evaluated` equals the number of *distinct*
/// nodes, no matter how many queries or duplicated sub-expressions fed
/// the plan.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Plan nodes evaluated (each distinct node exactly once).
    pub nodes_evaluated: usize,
    /// Worker threads that actually evaluated at least one node — the
    /// real pool engagement, not the configured budget: `1` when the
    /// plan was too small for the pool and the sequential path ran, and
    /// at most the number of spawned workers otherwise.
    pub threads: usize,
    /// Structural waves (DAG depth levels) the plan spanned.
    pub waves: usize,
    /// Wall-clock time of the whole execution, in nanoseconds.
    pub wall_ns: u64,
}

/// The result of executing a plan: one [`RegionSet`] per node.
#[derive(Debug)]
pub struct Executed {
    results: Vec<RegionSet>,
    stats: ExecStats,
}

impl Executed {
    /// The value of node `id` (any node, not just roots).
    pub fn result(&self, id: NodeId) -> &RegionSet {
        &self.results[id]
    }

    /// Consumes the execution, keeping only the requested nodes' values.
    pub fn take(mut self, ids: &[NodeId]) -> Vec<RegionSet> {
        ids.iter()
            .map(|&id| std::mem::take(&mut self.results[id]))
            .collect()
    }

    /// Execution statistics.
    pub fn stats(&self) -> ExecStats {
        self.stats
    }
}

/// Executes `plan` over `inst`, returning every node's value plus stats.
///
/// With `cfg.threads == 1` this is a simple children-first walk; otherwise
/// a pool of scoped worker threads drains a ready queue seeded with the
/// plan's leaves.
pub fn execute<W: WordIndex + Sync>(plan: &Plan, inst: &Instance<W>, cfg: &ExecConfig) -> Executed {
    execute_segmented(plan, inst, cfg, None)
}

/// [`execute`], with an optional segment-parallel mode.
///
/// When `corpus` describes more than one segment, every `Select` and
/// binary-operator node is evaluated per segment — serial kernels over
/// zero-copy segment views, each given the partner window its boundary
/// rule requires — and the per-segment results are merged in order (see
/// [`crate::seg`]). Results are byte-identical to the unsegmented path
/// for any plan and any segment count; `None` (or a single-segment
/// corpus) is exactly [`execute`].
pub fn execute_segmented<W: WordIndex + Sync>(
    plan: &Plan,
    inst: &Instance<W>,
    cfg: &ExecConfig,
    corpus: Option<&Corpus>,
) -> Executed {
    execute_with_choices(plan, inst, cfg, corpus, None)
}

/// [`execute_segmented`], with an optional per-node segmentation choice.
///
/// `choices[id]` says whether node `id` should run through the
/// segment-parallel kernels (`true`) or the whole-document kernels
/// (`false`); the cost model in [`crate::cost`] produces the vector
/// (see [`crate::cost::choose_segmentation`]). `None` segments every
/// eligible node — the historical fixed heuristic. The choice affects
/// only *how* a node is evaluated, never its value: both kernel families
/// are byte-identical, so any `choices` vector yields the same results.
pub fn execute_with_choices<W: WordIndex + Sync>(
    plan: &Plan,
    inst: &Instance<W>,
    cfg: &ExecConfig,
    corpus: Option<&Corpus>,
    choices: Option<&[bool]>,
) -> Executed {
    let _span = tr_obs::span("exec.execute");
    // A trivial (single-segment) corpus is the unsegmented path.
    let bounds = corpus.filter(|c| !c.is_trivial()).map(Corpus::bounds);
    debug_assert!(choices.is_none_or(|c| c.len() == plan.len()));
    let node_bounds = |id: NodeId| bounds.filter(|_| choices.is_none_or(|c| c[id]));
    let started = Instant::now();
    let metrics = ExecMetrics::get();
    let n = plan.len();
    let threads = cfg.resolved_threads().min(n.max(1));
    let kernels = cfg.parallelism();
    let waves = record_waves(plan, metrics);
    metrics.runs.inc();
    metrics.nodes.add(n as u64);

    if threads <= 1 {
        let mut results: Vec<RegionSet> = Vec::with_capacity(n);
        for id in 0..n {
            let value = eval_node(
                plan.op(id),
                |c| &results[c],
                inst,
                &kernels,
                node_bounds(id),
            );
            results.push(value);
        }
        let wall_ns = started.elapsed().as_nanos() as u64;
        metrics.wall_ns.record(wall_ns);
        return Executed {
            results,
            stats: ExecStats {
                nodes_evaluated: n,
                threads: 1,
                waves,
                wall_ns,
            },
        };
    }

    let parents = plan.parents();
    let engaged = AtomicUsize::new(0);
    let slots: Vec<OnceLock<RegionSet>> = (0..n).map(|_| OnceLock::new()).collect();
    let pending: Vec<AtomicUsize> = (0..n)
        .map(|id| AtomicUsize::new(plan.op(id).children().count()))
        .collect();
    let ready: Mutex<Vec<NodeId>> = Mutex::new(
        (0..n)
            .filter(|&id| pending[id].load(Ordering::Relaxed) == 0)
            .collect(),
    );
    let wake = Condvar::new();
    let remaining = AtomicUsize::new(n);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut evaluated_any = false;
                loop {
                    let id = {
                        let mut q = ready.lock().expect("scheduler lock");
                        loop {
                            if let Some(id) = q.pop() {
                                break Some(id);
                            }
                            if remaining.load(Ordering::Acquire) == 0 {
                                break None;
                            }
                            q = wake.wait(q).expect("scheduler lock");
                        }
                    };
                    let Some(id) = id else {
                        if evaluated_any {
                            engaged.fetch_add(1, Ordering::Relaxed);
                        }
                        return;
                    };
                    evaluated_any = true;
                    let value = eval_node(
                        plan.op(id),
                        |c| slots[c].get().expect("children complete before parents"),
                        inst,
                        &kernels,
                        node_bounds(id),
                    );
                    slots[id].set(value).expect("each node evaluated once");
                    // Release readiness to parents; wake workers for new work
                    // (and everyone when the last node lands).
                    let mut unlocked_new = 0;
                    {
                        let mut q = ready.lock().expect("scheduler lock");
                        for &p in &parents[id] {
                            if pending[p].fetch_sub(1, Ordering::AcqRel) == 1 {
                                q.push(p);
                                unlocked_new += 1;
                            }
                        }
                    }
                    if remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                        wake.notify_all();
                    } else {
                        for _ in 0..unlocked_new {
                            wake.notify_one();
                        }
                    }
                }
            });
        }
    });

    let results: Vec<RegionSet> = slots
        .into_iter()
        .map(|s| s.into_inner().expect("all nodes evaluated"))
        .collect();
    let wall_ns = started.elapsed().as_nanos() as u64;
    metrics.wall_ns.record(wall_ns);
    Executed {
        results,
        stats: ExecStats {
            nodes_evaluated: n,
            threads: engaged.load(Ordering::Relaxed).max(1),
            waves,
            wall_ns,
        },
    }
}

/// Computes the plan's structural waves — nodes grouped by DAG depth
/// (leaves are wave 0, a node sits one past its deepest child) — and
/// records the per-wave node counts. Returns the number of waves.
fn record_waves(plan: &Plan, metrics: &ExecMetrics) -> usize {
    if plan.is_empty() {
        return 0;
    }
    let mut depth = vec![0usize; plan.len()];
    let mut width = Vec::new();
    for id in 0..plan.len() {
        let d = plan
            .op(id)
            .children()
            .map(|c| depth[c] + 1)
            .max()
            .unwrap_or(0);
        depth[id] = d;
        if d >= width.len() {
            width.resize(d + 1, 0usize);
        }
        width[d] += 1;
    }
    metrics.waves.add(width.len() as u64);
    for &w in &width {
        metrics.wave_nodes.record(w as u64);
    }
    width.len()
}

/// Evaluates one node given its children's values. `bounds`, when
/// present, routes `Select` and binary nodes through the segment-parallel
/// kernels of [`crate::seg`].
fn eval_node<'a, W: WordIndex + Sync>(
    op: &PlanOp,
    child: impl Fn(NodeId) -> &'a RegionSet,
    inst: &Instance<W>,
    kernels: &Parallelism,
    bounds: Option<&[crate::region::Pos]>,
) -> RegionSet {
    let metrics = ExecMetrics::get();
    let started = Instant::now();
    let out = eval_node_inner(op, child, inst, kernels, bounds, metrics);
    metrics.kernels[kernel_index(op)].record(started.elapsed().as_nanos() as u64);
    out
}

fn eval_node_inner<'a, W: WordIndex + Sync>(
    op: &PlanOp,
    child: impl Fn(NodeId) -> &'a RegionSet,
    inst: &Instance<W>,
    kernels: &Parallelism,
    bounds: Option<&[crate::region::Pos]>,
    metrics: &ExecMetrics,
) -> RegionSet {
    match op {
        PlanOp::Name(id) => {
            // A handle clone of the instance's columnar buffer: refcount
            // bump, no region copies.
            metrics.base_zero_copy.inc();
            inst.regions_of(*id).clone()
        }
        PlanOp::Select(pattern, c) => {
            let word = inst.word_index();
            match bounds {
                Some(b) => {
                    seg::filter_segmented(child(*c), b, kernels, |r| word.matches(r, pattern))
                }
                None => child(*c).filter_par(kernels, |r| word.matches(r, pattern)),
            }
        }
        PlanOp::Bin(bin, l, r) => {
            let (lv, rv) = (child(*l), child(*r));
            if let Some(b) = bounds {
                return seg::eval_bin_segmented(*bin, lv, rv, b, kernels);
            }
            match bin {
                BinOp::Union => lv.union_par(rv, kernels),
                BinOp::Intersect => lv.intersect_par(rv, kernels),
                BinOp::Diff => lv.difference_par(rv, kernels),
                BinOp::Including => ops::includes_par(lv, rv, kernels),
                BinOp::IncludedIn => ops::included_in_par(lv, rv, kernels),
                BinOp::Before => ops::precedes_par(lv, rv, kernels),
                BinOp::After => ops::follows_par(lv, rv, kernels),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{eval, eval_naive};
    use crate::expr::Expr;
    use crate::instance::InstanceBuilder;
    use crate::region::region;
    use crate::schema::Schema;

    fn sample_instance() -> (Schema, Instance) {
        let schema = Schema::new(["A", "B"]);
        let inst = InstanceBuilder::new(schema.clone())
            .add("A", region(0, 9))
            .add("B", region(1, 8))
            .add("A", region(2, 5))
            .add("B", region(12, 20))
            .add("A", region(13, 17))
            .occurrence("x", 3, 1)
            .occurrence("x", 14, 1)
            .build_valid();
        (schema, inst)
    }

    fn exprs(schema: &Schema) -> Vec<Expr> {
        let a = Expr::name(schema.expect_id("A"));
        let b = Expr::name(schema.expect_id("B"));
        let shared = a.clone().included_in(b.clone());
        vec![
            a.clone(),
            shared.clone(),
            shared
                .clone()
                .union(shared.clone().intersect(shared.clone())),
            shared.clone().select("x"),
            a.clone()
                .including(b.clone())
                .diff(b.clone().including(a.clone())),
            a.clone().before(b.clone()).after(b.clone()),
            b.clone().union(a.clone().included_in(b.clone())),
            shared.select("x").union(a.including(b)),
        ]
    }

    #[test]
    fn sequential_executor_matches_eval() {
        let (schema, inst) = sample_instance();
        for e in exprs(&schema) {
            let mut plan = Plan::new();
            let root = plan.lower(&e);
            let out = execute(&plan, &inst, &ExecConfig::sequential());
            assert_eq!(out.result(root), &eval(&e, &inst), "expr {e}");
        }
    }

    #[test]
    fn parallel_executor_matches_eval_and_naive() {
        let (schema, inst) = sample_instance();
        // Force maximal splitting: several threads, cutoff of 1.
        let cfg = ExecConfig {
            threads: 4,
            kernel_cutoff: 1,
        };
        for e in exprs(&schema) {
            let mut plan = Plan::new();
            let root = plan.lower(&e);
            let out = execute(&plan, &inst, &cfg);
            assert_eq!(out.result(root), &eval(&e, &inst), "fast oracle, expr {e}");
            assert_eq!(
                out.result(root),
                &eval_naive(&e, &inst),
                "naive oracle, expr {e}"
            );
        }
    }

    #[test]
    fn batch_evaluates_each_distinct_node_once() {
        let (schema, inst) = sample_instance();
        let all = exprs(&schema);
        let mut plan = Plan::new();
        let roots = plan.lower_batch(all.iter());
        let distinct = plan.len();
        // The batch shares A, B, and A⊂B heavily: far fewer nodes than
        // the sum of tree sizes.
        let tree_sizes: usize = all.iter().map(|e| e.num_ops() + e.names().len()).sum();
        assert!(
            distinct < tree_sizes,
            "{distinct} nodes vs {tree_sizes} tree ops"
        );
        for cfg in [
            ExecConfig::sequential(),
            ExecConfig {
                threads: 4,
                kernel_cutoff: 1,
            },
        ] {
            let out = execute(&plan, &inst, &cfg);
            assert_eq!(out.stats().nodes_evaluated, distinct);
            for (root, e) in roots.iter().zip(&all) {
                assert_eq!(out.result(*root), &eval(e, &inst), "expr {e}");
            }
        }
    }

    #[test]
    fn segmented_executor_matches_unsegmented() {
        let (schema, inst) = sample_instance();
        // Document spans positions 0..=20; segment at several counts so
        // boundaries fall inside, between, and beyond the regions.
        for n in [1usize, 2, 3, 7, 16] {
            let corpus = Corpus::from_instance(&inst, 21, n);
            for threads in [1usize, 4] {
                let cfg = ExecConfig {
                    threads,
                    kernel_cutoff: 1,
                };
                for e in exprs(&schema) {
                    let mut plan = Plan::new();
                    let root = plan.lower(&e);
                    let out = execute_segmented(&plan, &inst, &cfg, Some(&corpus));
                    let want = execute(&plan, &inst, &ExecConfig::sequential());
                    assert_eq!(
                        out.result(root),
                        want.result(root),
                        "expr {e}, {n} segments, {threads} threads"
                    );
                }
            }
        }
    }

    #[test]
    fn take_returns_roots_in_order() {
        let (schema, inst) = sample_instance();
        let a = Expr::name(schema.expect_id("A"));
        let b = Expr::name(schema.expect_id("B"));
        let mut plan = Plan::new();
        let roots = plan.lower_batch([&b, &a, &b]);
        let out = execute(&plan, &inst, &ExecConfig::sequential());
        let vals = out.take(&roots);
        assert_eq!(vals[0], eval(&b, &inst));
        assert_eq!(vals[1], eval(&a, &inst));
        // Duplicated roots: the second copy was taken already.
        assert_eq!(roots[0], roots[2]);
    }

    #[test]
    fn deep_chain_parallel() {
        // A linear chain gives the scheduler no inter-node parallelism;
        // results must still be correct (and the run must not deadlock).
        let schema = Schema::new(["A", "B"]);
        let mut builder = InstanceBuilder::new(schema.clone());
        for i in 0..40u32 {
            builder = builder.add(if i % 2 == 0 { "A" } else { "B" }, region(i, 100 - i));
        }
        let inst = builder.build_valid();
        let mut e = Expr::name(schema.expect_id("A"));
        let b = Expr::name(schema.expect_id("B"));
        for _ in 0..30 {
            e = e.included_in(b.clone());
        }
        let mut plan = Plan::new();
        let root = plan.lower(&e);
        let out = execute(
            &plan,
            &inst,
            &ExecConfig {
                threads: 8,
                kernel_cutoff: 1,
            },
        );
        assert_eq!(out.result(root), &eval(&e, &inst));
    }
}
