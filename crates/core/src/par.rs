//! Chunked data-parallelism on scoped threads.
//!
//! The build environment carries no external crates, so instead of rayon
//! this module provides the one primitive the operator kernels need:
//! split an index range into near-equal chunks and map them on
//! `std::thread::scope` workers, preserving chunk order. A [`Parallelism`]
//! value carries the thread budget and the *sequential cutoff* — inputs
//! smaller than the cutoff stay on the calling thread, so small sets keep
//! the single-threaded fast path and thread spawn cost is only paid where
//! it can be amortized.

use std::num::NonZeroUsize;
use std::ops::Range;
use std::sync::{Arc, OnceLock};

/// Cached handles into the `tr_obs` metrics registry.
struct ParMetrics {
    /// `par.splits`: kernel invocations that split across threads.
    splits: Arc<tr_obs::Counter>,
    /// `par.chunks`: total chunks produced by split kernels.
    chunks: Arc<tr_obs::Counter>,
    /// `par.threads_spawned`: scoped worker threads spawned.
    threads_spawned: Arc<tr_obs::Counter>,
    /// `par.cutoff_hits`: kernels kept sequential by the cutoff despite a
    /// multi-thread budget.
    cutoff_hits: Arc<tr_obs::Counter>,
}

impl ParMetrics {
    fn get() -> &'static ParMetrics {
        static METRICS: OnceLock<ParMetrics> = OnceLock::new();
        METRICS.get_or_init(|| ParMetrics {
            splits: tr_obs::counter("par.splits"),
            chunks: tr_obs::counter("par.chunks"),
            threads_spawned: tr_obs::counter("par.threads_spawned"),
            cutoff_hits: tr_obs::counter("par.cutoff_hits"),
        })
    }
}

/// Thread budget and sequential cutoff for intra-operator parallelism.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Parallelism {
    /// Maximum worker threads (including the calling thread). `1` means
    /// fully sequential.
    pub threads: usize,
    /// Minimum number of input elements before work is split. Inputs
    /// smaller than this run sequentially regardless of `threads`.
    pub cutoff: usize,
}

/// Default sequential cutoff: below this size, splitting a kernel across
/// threads costs more than the work itself on typical hardware.
pub const DEFAULT_CUTOFF: usize = 4096;

impl Parallelism {
    /// Fully sequential execution.
    pub fn disabled() -> Parallelism {
        Parallelism {
            threads: 1,
            cutoff: usize::MAX,
        }
    }

    /// Uses up to `threads` threads (0 ⇒ all available cores) with the
    /// given cutoff.
    pub fn new(threads: usize, cutoff: usize) -> Parallelism {
        let threads = if threads == 0 {
            available_threads()
        } else {
            threads
        };
        Parallelism {
            threads: threads.max(1),
            cutoff: cutoff.max(1),
        }
    }

    /// All available cores with the default cutoff.
    pub fn available() -> Parallelism {
        Parallelism::new(0, DEFAULT_CUTOFF)
    }

    /// How many chunks an input of `len` elements should split into.
    /// Counts sequential-cutoff hits (a multi-thread budget kept
    /// sequential because the input was too small) in `par.cutoff_hits`.
    pub fn chunks_for(&self, len: usize) -> usize {
        if self.threads <= 1 {
            return 1;
        }
        if len < self.cutoff.saturating_mul(2) {
            ParMetrics::get().cutoff_hits.inc();
            return 1;
        }
        self.threads.min(len / self.cutoff).max(1)
    }
}

impl Default for Parallelism {
    fn default() -> Parallelism {
        Parallelism::available()
    }
}

/// Number of hardware threads, defaulting to 1 when unknown.
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Splits `0..len` into `chunks` near-equal ranges and maps each through
/// `f`, returning results in range order. `chunks <= 1` runs inline on the
/// calling thread; otherwise `chunks - 1` scoped threads are spawned and
/// the calling thread takes the first range.
pub fn map_chunks<U, F>(len: usize, chunks: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(Range<usize>) -> U + Sync,
{
    let ranges = split_ranges(len, chunks);
    if ranges.len() <= 1 {
        return ranges.into_iter().map(f).collect();
    }
    let metrics = ParMetrics::get();
    metrics.splits.inc();
    metrics.chunks.add(ranges.len() as u64);
    metrics.threads_spawned.add(ranges.len() as u64 - 1);
    let mut iter = ranges.into_iter();
    let first = iter.next().expect("at least one range");
    let rest: Vec<Range<usize>> = iter.collect();
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = rest
            .into_iter()
            .map(|r| scope.spawn(move || f(r)))
            .collect();
        let mut out = Vec::with_capacity(handles.len() + 1);
        out.push(f(first));
        for h in handles {
            match h.join() {
                Ok(v) => out.push(v),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        out
    })
}

/// `0..len` as `chunks` near-equal, in-order, non-empty ranges (fewer than
/// `chunks` if `len` is small).
fn split_ranges(len: usize, chunks: usize) -> Vec<Range<usize>> {
    if len == 0 {
        return std::iter::once(0..0).collect();
    }
    let chunks = chunks.clamp(1, len);
    (0..chunks)
        .map(|i| (i * len / chunks)..((i + 1) * len / chunks))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_covers_in_order() {
        for len in [0usize, 1, 2, 7, 100, 101] {
            for chunks in 1..6 {
                let ranges = split_ranges(len, chunks);
                let flat: Vec<usize> = ranges.iter().cloned().flatten().collect();
                assert_eq!(
                    flat,
                    (0..len).collect::<Vec<_>>(),
                    "len {len} chunks {chunks}"
                );
            }
        }
    }

    #[test]
    fn map_chunks_matches_sequential() {
        let data: Vec<u64> = (0..10_000).collect();
        let seq: u64 = data.iter().sum();
        for chunks in [1, 2, 3, 8] {
            let par: u64 = map_chunks(data.len(), chunks, |r| data[r].iter().sum::<u64>())
                .into_iter()
                .sum();
            assert_eq!(par, seq);
        }
    }

    #[test]
    fn chunks_respect_cutoff() {
        let p = Parallelism {
            threads: 8,
            cutoff: 100,
        };
        assert_eq!(p.chunks_for(50), 1, "below cutoff stays sequential");
        assert_eq!(
            p.chunks_for(199),
            1,
            "less than two cutoffs stays sequential"
        );
        assert!(p.chunks_for(800) >= 2);
        assert!(p.chunks_for(10_000) <= 8);
        assert_eq!(Parallelism::disabled().chunks_for(usize::MAX / 4), 1);
    }
}
