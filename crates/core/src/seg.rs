//! Position-range segmentation: the [`Corpus`] partition and the
//! segment-parallel operator kernels behind
//! [`crate::exec::execute_segmented`].
//!
//! A [`Corpus`] splits a document's position space `[0, doc_len)` into N
//! contiguous segments. A region belongs to the segment containing its
//! **left endpoint** — so a name's regions, already sorted by
//! `(left asc, right desc)`, fall into N consecutive column ranges and
//! every per-segment view is a zero-copy [`RegionSet::slice`] of the one
//! shared [`crate::set::RegionBuf`]. The probe auxiliaries
//! (`PrefixMaxRight` / `MinRightRmq`) are memoized per *buffer* with
//! buffer-absolute indices, so the segment views reuse one memoized
//! structure instead of building N.
//!
//! Each operator then decomposes into independent per-segment runs of the
//! unchanged *serial* kernel, fanned out across threads by
//! [`par::map_chunks`], plus a boundary rule choosing which window of the
//! partner operand each segment must see:
//!
//! | operator              | partner window for segment `[lo, hi)`       |
//! |-----------------------|---------------------------------------------|
//! | union/intersect/diff  | `S` restricted to lefts in `[lo, hi)`       |
//! | including (`R ⊃ S`)   | suffix of `S` with lefts `≥ lo`             |
//! | included-in (`R ⊂ S`) | prefix of `S` with lefts `< hi`             |
//! | before / after        | one global scalar (`max_left` / `min_right`)|
//!
//! The table is owned by [`crate::partition`] (see
//! [`crate::partition::partner_rule`]), which phrases the same rules
//! over arbitrary position windows — that is what lets a *remote* shard
//! evaluate a plan over its range with only local operand windows. This
//! module consumes the rules via `partition::partner_slice`,
//! pre-split at the segment boundaries.
//!
//! Why these suffice: a region `x` in segment `[lo, hi)` has
//! `lo ≤ x.left < hi`. Any `s ⊂ x` has `s.left ≥ x.left ≥ lo`; any
//! `s ⊃ x` has `s.left ≤ x.left < hi`; the positional operators only
//! compare against one scalar of `S`. The set operators pair regions with
//! equal lefts, and equal lefts land in the same segment.
//!
//! Per-segment outputs keep lefts inside their segment's range, so the
//! concatenation is globally sorted and duplicate-free by construction —
//! the k-way merge is [`RegionSet::concat`], which collapses to a single
//! zero-copy handle whenever the parts are adjacent views of one buffer
//! (always for `after`, and for any contiguous filter result).

use crate::instance::Instance;
use crate::ops;
use crate::par::{self, Parallelism};
use crate::partition;
use crate::region::{Pos, Region};
use crate::set::RegionSet;
use crate::word::WordIndex;
use crate::BinOp;
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Cached handles into the `tr_obs` metrics registry.
struct SegMetrics {
    /// `corpus.segments`: segments created by [`Corpus`] builds.
    segments: Arc<tr_obs::Counter>,
    /// `exec.segment_waves`: plan-node evaluations that ran the
    /// segment-parallel path (one per segmented node, regardless of N).
    waves: Arc<tr_obs::Counter>,
    /// `exec.merge_ns`: nanoseconds spent in the ordered merge
    /// ([`RegionSet::concat`]) of per-segment results.
    merge_ns: Arc<tr_obs::Counter>,
}

impl SegMetrics {
    fn get() -> &'static SegMetrics {
        static METRICS: OnceLock<SegMetrics> = OnceLock::new();
        METRICS.get_or_init(|| SegMetrics {
            segments: tr_obs::counter("corpus.segments"),
            waves: tr_obs::counter("exec.segment_waves"),
            merge_ns: tr_obs::counter("exec.merge_ns"),
        })
    }
}

/// Target segment size: one segment per this many text bytes.
pub const SEGMENT_TARGET_BYTES: usize = 64 * 1024;

/// Upper bound on the deterministic segment-count heuristic.
pub const MAX_SEGMENTS: usize = 16;

/// The default segment count for a document of `text_bytes` bytes:
/// roughly one segment per [`SEGMENT_TARGET_BYTES`], clamped to
/// `[1, MAX_SEGMENTS]`.
///
/// Deliberately a pure function of the document size — never of the core
/// count — so the same document segments identically on every machine
/// (the bench gate compares `corpus.segments` across hosts, and stored
/// manifests stay reproducible).
pub fn segment_count_for(text_bytes: usize) -> usize {
    (1 + text_bytes / SEGMENT_TARGET_BYTES).min(MAX_SEGMENTS)
}

/// Splits `[0, doc_len)` into `n` near-equal position ranges, returned as
/// `n + 1` monotone boundaries (`bounds[0] == 0`). `n` is clamped to at
/// least 1. Segment `i` covers positions `[bounds[i], bounds[i+1])`, with
/// the final segment implicitly extended to cover any position at or past
/// the last boundary.
pub fn segment_bounds(doc_len: usize, n: usize) -> Vec<Pos> {
    let n = n.max(1);
    (0..=n as u64)
        .map(|i| ((i * doc_len as u64 / n as u64).min(Pos::MAX as u64)) as Pos)
        .collect()
}

/// Where `bounds` cuts `set`'s columns: `n + 1` indices with
/// `ps[0] == 0`, `ps[n] == set.len()`, and interior `ps[i]` the first
/// region whose left endpoint is `≥ bounds[i]`. Segment `i`'s regions are
/// exactly `set.slice(ps[i], ps[i+1])` — a zero-copy view.
pub fn split_points(set: &RegionSet, bounds: &[Pos]) -> Vec<usize> {
    let n = bounds.len().saturating_sub(1).max(1);
    let mut ps = Vec::with_capacity(n + 1);
    ps.push(0);
    for &b in bounds.iter().take(n).skip(1) {
        ps.push(set.lower_bound_left(b));
    }
    ps.push(set.len());
    ps
}

/// A document's position space partitioned into segments, with each base
/// name's columns pre-split at the segment boundaries.
///
/// Building a corpus copies nothing: per-name segment views are
/// [`RegionSet::slice`]s of the instance's shared buffers, and the probe
/// auxiliaries those views use are the buffer-wide memoized ones.
#[derive(Debug, Clone)]
pub struct Corpus {
    bounds: Vec<Pos>,
    /// Per-name split points (`schema` order), each of length
    /// `num_segments() + 1`.
    splits: Vec<Vec<usize>>,
}

impl Corpus {
    /// Partitions `inst`'s document (of `doc_len` text bytes) into `n`
    /// segments (clamped to at least 1), assigning every region to the
    /// segment containing its left endpoint. Adds `n` to the
    /// `corpus.segments` counter.
    pub fn from_instance<W: WordIndex>(inst: &Instance<W>, doc_len: usize, n: usize) -> Corpus {
        let bounds = segment_bounds(doc_len, n);
        let splits = inst
            .schema()
            .ids()
            .map(|id| split_points(inst.regions_of(id), &bounds))
            .collect();
        SegMetrics::get().segments.add(bounds.len() as u64 - 1);
        Corpus { bounds, splits }
    }

    /// Number of segments (always at least 1).
    pub fn num_segments(&self) -> usize {
        self.bounds.len() - 1
    }

    /// The `num_segments() + 1` monotone segment boundaries.
    pub fn bounds(&self) -> &[Pos] {
        &self.bounds
    }

    /// Zero-copy view of name `name`'s regions in segment `seg` (indices
    /// follow the instance's schema order). Panics if out of bounds.
    pub fn segment_of_name<W: WordIndex>(
        &self,
        inst: &Instance<W>,
        name: crate::schema::NameId,
        seg: usize,
    ) -> RegionSet {
        let ps = &self.splits[name.index()];
        inst.regions_of(name).slice(ps[seg], ps[seg + 1])
    }

    /// True when segmentation is a no-op (a single segment).
    pub fn is_trivial(&self) -> bool {
        self.num_segments() <= 1
    }
}

/// Runs the per-segment closure for each segment index, fanning segments
/// across up to `par.threads` threads, and merges the per-segment results
/// in segment order, timing the merge into `exec.merge_ns`.
fn fan_out_merge(
    n_seg: usize,
    par: &Parallelism,
    eval_seg: impl Fn(usize) -> RegionSet + Sync,
) -> RegionSet {
    let parts: Vec<Vec<RegionSet>> =
        par::map_chunks(n_seg, par.threads.min(n_seg).max(1), |range| {
            range.map(&eval_seg).collect()
        });
    let flat: Vec<RegionSet> = parts.into_iter().flatten().collect();
    let merge_started = Instant::now();
    let out = RegionSet::concat(&flat);
    SegMetrics::get()
        .merge_ns
        .add(merge_started.elapsed().as_nanos() as u64);
    out
}

/// Segment-parallel evaluation of one binary operator: `r op s` as the
/// ordered merge of per-segment serial-kernel runs, each seeing only the
/// partner window the boundary rule requires (see the module docs).
/// Byte-identical to the whole-document kernels; falls back to the `_par`
/// kernels when `bounds` describes a single segment.
pub fn eval_bin_segmented(
    op: BinOp,
    r: &RegionSet,
    s: &RegionSet,
    bounds: &[Pos],
    par: &Parallelism,
) -> RegionSet {
    let n_seg = bounds.len().saturating_sub(1);
    if n_seg <= 1 {
        return eval_bin_whole(op, r, s, par);
    }
    SegMetrics::get().waves.inc();
    let rp = split_points(r, bounds);
    match op {
        BinOp::Union | BinOp::Intersect | BinOp::Diff | BinOp::Including | BinOp::IncludedIn => {
            let sp = split_points(s, bounds);
            // Prebuild the shared probe auxiliary once, outside the
            // fan-out, so the per-segment runs reuse one structure.
            match op {
                BinOp::Including => {
                    s.min_right_rmq();
                }
                BinOp::IncludedIn => {
                    s.prefix_max_right();
                }
                _ => {}
            }
            // Each segment sees the partner window its boundary rule
            // prescribes — the rule table lives in `crate::partition`,
            // shared with the remote-shard planner.
            fan_out_merge(n_seg, par, |i| {
                let rseg = r.slice(rp[i], rp[i + 1]);
                let sseg = partition::partner_slice(op, s, &sp, i);
                match op {
                    BinOp::Union => rseg.union(&sseg),
                    BinOp::Intersect => rseg.intersect(&sseg),
                    BinOp::Diff => rseg.difference(&sseg),
                    BinOp::Including => ops::includes(&rseg, &sseg),
                    _ => ops::included_in(&rseg, &sseg),
                }
            })
        }
        BinOp::Before => match s.max_left() {
            None => RegionSet::new(),
            Some(m) => fan_out_merge(n_seg, par, |i| {
                ops::precedes_before(&r.slice(rp[i], rp[i + 1]), m)
            }),
        },
        BinOp::After => match s.min_right() {
            None => RegionSet::new(),
            Some(m) => fan_out_merge(n_seg, par, |i| {
                // Per-segment suffix slices: adjacent views, so the merge
                // collapses to one zero-copy handle.
                let rseg = r.slice(rp[i], rp[i + 1]);
                let cut = rseg.upper_bound_left(m);
                rseg.slice(cut, rseg.len())
            }),
        },
    }
}

/// Segment-parallel `filter` (the `Select` kernel): each segment filtered
/// serially, merged in segment order. Falls back to
/// [`RegionSet::filter_par`] for a single segment.
pub fn filter_segmented(
    set: &RegionSet,
    bounds: &[Pos],
    par: &Parallelism,
    pred: impl Fn(Region) -> bool + Sync,
) -> RegionSet {
    let n_seg = bounds.len().saturating_sub(1);
    if n_seg <= 1 {
        return set.filter_par(par, pred);
    }
    SegMetrics::get().waves.inc();
    let ps = split_points(set, bounds);
    fan_out_merge(n_seg, par, |i| set.slice(ps[i], ps[i + 1]).filter(&pred))
}

/// The unsegmented (N = 1) evaluation of `op` — the oracle the segmented
/// path must match byte-for-byte.
fn eval_bin_whole(op: BinOp, r: &RegionSet, s: &RegionSet, par: &Parallelism) -> RegionSet {
    match op {
        BinOp::Union => r.union_par(s, par),
        BinOp::Intersect => r.intersect_par(s, par),
        BinOp::Diff => r.difference_par(s, par),
        BinOp::Including => ops::includes_par(r, s, par),
        BinOp::IncludedIn => ops::included_in_par(r, s, par),
        BinOp::Before => ops::precedes_par(r, s, par),
        BinOp::After => ops::follows_par(r, s, par),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceBuilder;
    use crate::region::region;
    use crate::schema::Schema;

    #[test]
    fn heuristic_is_deterministic_and_clamped() {
        assert_eq!(segment_count_for(0), 1);
        assert_eq!(segment_count_for(SEGMENT_TARGET_BYTES - 1), 1);
        assert_eq!(segment_count_for(SEGMENT_TARGET_BYTES), 2);
        assert_eq!(segment_count_for(usize::MAX / 2), MAX_SEGMENTS);
    }

    #[test]
    fn bounds_are_monotone_and_cover() {
        for (len, n) in [(0usize, 1usize), (0, 4), (1, 3), (100, 7), (100, 200)] {
            let b = segment_bounds(len, n);
            assert_eq!(b.len(), n.max(1) + 1);
            assert_eq!(b[0], 0);
            assert_eq!(*b.last().unwrap() as usize, len);
            assert!(b.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn split_points_partition_by_left_endpoint() {
        let set = RegionSet::from_regions(vec![
            region(0, 30), // straddles every boundary but belongs to seg 0
            region(2, 3),
            region(10, 12),
            region(10, 25),
            region(19, 21), // straddles the 20-boundary, belongs to seg 1
            region(20, 22),
            region(29, 29),
        ]);
        let bounds = segment_bounds(30, 3); // [0, 10, 20, 30]
        let ps = split_points(&set, &bounds);
        assert_eq!(ps, vec![0, 2, 5, 7]);
        for i in 0..3 {
            let seg = set.slice(ps[i], ps[i + 1]);
            assert!(seg.shares_buf(&set), "segment views are zero-copy");
            for x in seg.iter() {
                assert!(x.left() >= bounds[i] && x.left() < bounds[i + 1].max(30));
            }
        }
    }

    #[test]
    fn corpus_segments_cover_each_name() {
        let schema = Schema::new(["A", "B"]);
        let inst = InstanceBuilder::new(schema.clone())
            .add("A", region(0, 90))
            .add("A", region(5, 10))
            .add("A", region(40, 60))
            .add("B", region(6, 9))
            .add("B", region(70, 80))
            .build_valid();
        let corpus = Corpus::from_instance(&inst, 100, 4);
        assert_eq!(corpus.num_segments(), 4);
        for id in schema.ids() {
            let mut seen = 0;
            for s in 0..corpus.num_segments() {
                let seg = corpus.segment_of_name(&inst, id, s);
                assert!(seg.is_empty() || seg.shares_buf(inst.regions_of(id)));
                seen += seg.len();
            }
            assert_eq!(seen, inst.regions_of(id).len(), "segments partition");
        }
    }
}
