//! The partition/execution boundary: left-endpoint [`Window`]s, the
//! per-operator operand-window rules (shared with [`crate::seg`]'s
//! segment kernels), a [`PartitionPlanner`] that propagates windows down
//! a lowered [`Plan`], a range-restricted executor ([`execute_range`]),
//! and the [`PartitionExec`] / [`PartitionSet`] abstraction a plan
//! evaluates against — a local segment slice today, a remote backend
//! tomorrow.
//!
//! # The window algebra
//!
//! A window `[lo, hi)` selects the regions of a set whose **left
//! endpoint** falls inside it — the same convention as segment
//! membership in [`crate::seg`], so a window restriction of a sorted
//! [`RegionSet`] is always one zero-copy [`RegionSet::slice`]. Every
//! operator of the region algebra distributes over such windows given
//! the right window of each operand:
//!
//! | node producing `[lo, hi)` | left operand | right (partner) operand |
//! |---------------------------|--------------|-------------------------|
//! | `∪` / `∩` / `−`           | `[lo, hi)`   | `[lo, hi)`              |
//! | including (`R ⊃ S`)       | `[lo, hi)`   | `[lo, ∞)`               |
//! | included-in (`R ⊂ S`)     | `[lo, hi)`   | `[0, hi)`               |
//! | before / after            | `[lo, hi)`   | whole document          |
//! | `σ_p` (select)            | `[lo, hi)`   | —                       |
//!
//! Why these suffice: an output region `x` has `lo ≤ x.left < hi` and is
//! drawn from the left operand. Any witness `s ⊂ x` has
//! `s.left ≥ x.left ≥ lo`; any `s ⊃ x` has `s.left ≤ x.left < hi`; the
//! positional operators compare against one global scalar of `S`
//! (`max_left` / `min_right`), which no window of `S` can stand in for.
//! The set operators pair regions with equal endpoints, and equal lefts
//! share a window. [`crate::seg::eval_bin_segmented`] instantiates the
//! same table per segment; [`PartitionPlanner`] instantiates it per plan
//! node for one arbitrary range, which is what a remote shard executes.
//!
//! Byte-identity is the contract everywhere: for any plan, window, and
//! partition of the document's position space into windows,
//! concatenating the per-window results of [`execute_range`] in window
//! order equals the unrestricted result exactly.

use crate::exec::ExecConfig;
use crate::instance::Instance;
use crate::ops;
use crate::par::Parallelism;
use crate::plan::{NodeId, Plan, PlanOp};
use crate::region::Pos;
use crate::set::RegionSet;
use crate::word::WordIndex;
use crate::BinOp;
use std::fmt;
use std::sync::{Arc, OnceLock};

/// `partition.*` counter handles.
struct PartitionMetrics {
    /// `partition.range_execs`: range-restricted plan executions.
    range_execs: Arc<tr_obs::Counter>,
    /// `partition.nodes_skipped`: plan nodes outside the demanded cone
    /// that a range execution never evaluated.
    nodes_skipped: Arc<tr_obs::Counter>,
    /// `partition.scatter`: [`PartitionSet::execute`] calls that fanned
    /// out across more than one partition.
    scatter: Arc<tr_obs::Counter>,
}

impl PartitionMetrics {
    fn get() -> &'static PartitionMetrics {
        static METRICS: OnceLock<PartitionMetrics> = OnceLock::new();
        METRICS.get_or_init(|| PartitionMetrics {
            range_execs: tr_obs::counter("partition.range_execs"),
            nodes_skipped: tr_obs::counter("partition.nodes_skipped"),
            scatter: tr_obs::counter("partition.scatter"),
        })
    }
}

/// A half-open left-endpoint window `[lo, hi)`. `hi == Pos::MAX` means
/// unbounded (no document position reaches `Pos::MAX`, see
/// [`crate::seg::segment_bounds`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Window {
    /// First left endpoint inside the window.
    pub lo: Pos,
    /// First left endpoint past the window (`Pos::MAX` ⇒ unbounded).
    pub hi: Pos,
}

impl Window {
    /// The whole position space.
    pub const ALL: Window = Window {
        lo: 0,
        hi: Pos::MAX,
    };

    /// The window `[lo, hi)`.
    pub fn new(lo: Pos, hi: Pos) -> Window {
        Window { lo, hi }
    }

    /// True when the window is the whole position space.
    pub fn is_all(&self) -> bool {
        self.lo == 0 && self.hi == Pos::MAX
    }

    /// True when no position is inside.
    pub fn is_empty(&self) -> bool {
        self.lo >= self.hi
    }

    /// The smallest window containing both — safe to *evaluate* over
    /// (evaluation over a superset window restricts down exactly).
    pub fn hull(self, other: Window) -> Window {
        Window {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Restricts `set` to the regions whose left endpoint lies in the
    /// window — a zero-copy slice (the set is sorted by left).
    pub fn restrict(&self, set: &RegionSet) -> RegionSet {
        if self.is_all() {
            return set.clone();
        }
        if self.is_empty() {
            return RegionSet::new();
        }
        let a = set.lower_bound_left(self.lo);
        let b = if self.hi == Pos::MAX {
            set.len()
        } else {
            set.lower_bound_left(self.hi)
        };
        set.slice(a, b.max(a))
    }
}

impl fmt::Display for Window {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.hi == Pos::MAX {
            write!(f, "[{}, ∞)", self.lo)
        } else {
            write!(f, "[{}, {})", self.lo, self.hi)
        }
    }
}

/// Which window of the partner (right) operand a binary node needs to
/// produce its own output window — the boundary rule of the module-level
/// table, shared by the segment kernels and the partition planner.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PartnerRule {
    /// Partner restricted to the node's own window (`∪ ∩ −`).
    InWindow,
    /// Suffix of the partner with lefts `≥ lo` (including, `R ⊃ S`).
    SuffixFromLo,
    /// Prefix of the partner with lefts `< hi` (included-in, `R ⊂ S`).
    PrefixToHi,
    /// The whole partner — positional operators compare against a global
    /// scalar of `S` (before / after).
    Whole,
}

/// The boundary rule for `op`'s right operand. The left operand always
/// takes the node's own window.
pub fn partner_rule(op: BinOp) -> PartnerRule {
    match op {
        BinOp::Union | BinOp::Intersect | BinOp::Diff => PartnerRule::InWindow,
        BinOp::Including => PartnerRule::SuffixFromLo,
        BinOp::IncludedIn => PartnerRule::PrefixToHi,
        BinOp::Before | BinOp::After => PartnerRule::Whole,
    }
}

/// The partner-operand window for a node producing `w` — the same rule
/// as `partner_slice`, phrased over position windows instead of
/// pre-split column indices.
pub fn partner_window(op: BinOp, w: Window) -> Window {
    match partner_rule(op) {
        PartnerRule::InWindow => w,
        PartnerRule::SuffixFromLo => Window::new(w.lo, Pos::MAX),
        PartnerRule::PrefixToHi => Window::new(0, w.hi),
        PartnerRule::Whole => Window::ALL,
    }
}

/// The partner-operand view for segment `i` of a pre-split operand:
/// `sp` are `s`'s split points at the segment boundaries (see
/// [`crate::seg::split_points`]), so column range `[sp[i], sp[i+1])` is
/// exactly `s` restricted to the segment's window. Used by
/// [`crate::seg::eval_bin_segmented`] so the segment kernels and the
/// remote-shard planner share one implementation of the window table.
pub(crate) fn partner_slice(op: BinOp, s: &RegionSet, sp: &[usize], i: usize) -> RegionSet {
    match partner_rule(op) {
        PartnerRule::InWindow => s.slice(sp[i], sp[i + 1]),
        PartnerRule::SuffixFromLo => s.slice(sp[i], s.len()),
        PartnerRule::PrefixToHi => s.slice(0, sp[i + 1]),
        PartnerRule::Whole => s.clone(),
    }
}

/// Per-node evaluation windows for one root's cone of a lowered plan.
///
/// Built top-down from the root's demanded output window: each node's
/// window is the hull of every window its consumers demand (evaluating
/// over a hull is safe — consumers re-restrict to exactly the window
/// their rule prescribes, and window restriction commutes with taking
/// subsets). Nodes outside the root's cone have no window and are never
/// evaluated.
#[derive(Clone, Debug)]
pub struct PartitionPlanner {
    windows: Vec<Option<Window>>,
    root: NodeId,
}

impl PartitionPlanner {
    /// Plans the evaluation windows for `plan` restricted to producing
    /// `window` at `root`.
    pub fn plan(plan: &Plan, root: NodeId, window: Window) -> PartitionPlanner {
        let mut windows: Vec<Option<Window>> = vec![None; plan.len()];
        windows[root] = Some(window);
        // Children-first node ids mean one reverse pass sees every
        // consumer before the node it consumes.
        for id in (0..=root).rev() {
            let Some(w) = windows[id] else { continue };
            match plan.op(id) {
                PlanOp::Name(_) => {}
                PlanOp::Select(_, c) => widen(&mut windows, *c, w),
                PlanOp::Bin(op, l, r) => {
                    widen(&mut windows, *l, w);
                    widen(&mut windows, *r, partner_window(*op, w));
                }
            }
        }
        PartitionPlanner { windows, root }
    }

    /// The window node `id` must be evaluated over, or `None` when the
    /// node is outside the planned root's cone.
    pub fn window_of(&self, id: NodeId) -> Option<Window> {
        self.windows.get(id).copied().flatten()
    }

    /// The planned root.
    pub fn root(&self) -> NodeId {
        self.root
    }
}

fn widen(windows: &mut [Option<Window>], id: NodeId, w: Window) {
    windows[id] = Some(match windows[id] {
        Some(old) => old.hull(w),
        None => w,
    });
}

/// Evaluates `plan`'s `root` restricted to `window`: the returned set is
/// exactly `window.restrict(full_result)`, computed without building the
/// full result — each node in the root's cone is evaluated over the
/// window the [`PartitionPlanner`] assigned it, and consumers slice
/// their operands down to the window their boundary rule prescribes.
///
/// This is what a shard executes: concatenating `execute_range` results
/// over any ordered partition of the position space into windows
/// reproduces the unrestricted result byte-for-byte.
pub fn execute_range<W: WordIndex + Sync>(
    plan: &Plan,
    root: NodeId,
    inst: &Instance<W>,
    cfg: &ExecConfig,
    window: Window,
) -> RegionSet {
    let metrics = PartitionMetrics::get();
    metrics.range_execs.inc();
    let planner = PartitionPlanner::plan(plan, root, window);
    let kernels = Parallelism::new(cfg.resolved_threads(), cfg.kernel_cutoff);
    let mut results: Vec<Option<RegionSet>> = vec![None; root + 1];
    let mut skipped = (plan.len() - (root + 1)) as u64;
    for id in 0..=root {
        let Some(w) = planner.window_of(id) else {
            skipped += 1;
            continue;
        };
        // `operand` re-restricts a child (evaluated over its hull
        // window) down to the exact window this consumer demands.
        let operand = |c: NodeId, want: Window| -> RegionSet {
            let v = results[c].as_ref().expect("children precede parents");
            if planner.window_of(c) == Some(want) {
                v.clone()
            } else {
                want.restrict(v)
            }
        };
        let value = match plan.op(id) {
            PlanOp::Name(name) => w.restrict(inst.regions_of(*name)),
            PlanOp::Select(pattern, c) => {
                let word = inst.word_index();
                operand(*c, w).filter_par(&kernels, |r| word.matches(r, pattern))
            }
            PlanOp::Bin(op, l, r) => {
                let lv = operand(*l, w);
                let rv = operand(*r, partner_window(*op, w));
                match op {
                    BinOp::Union => lv.union_par(&rv, &kernels),
                    BinOp::Intersect => lv.intersect_par(&rv, &kernels),
                    BinOp::Diff => lv.difference_par(&rv, &kernels),
                    BinOp::Including => ops::includes_par(&lv, &rv, &kernels),
                    BinOp::IncludedIn => ops::included_in_par(&lv, &rv, &kernels),
                    BinOp::Before => ops::precedes_par(&lv, &rv, &kernels),
                    BinOp::After => ops::follows_par(&lv, &rv, &kernels),
                }
            }
        };
        results[id] = Some(value);
    }
    metrics.nodes_skipped.add(skipped);
    results[root].take().expect("root planned")
}

/// A failed partition evaluation (unreachable backend, refused shard…).
/// Local partitions are infallible; remote ones surface transport and
/// server errors here.
#[derive(Clone, Debug)]
pub struct PartitionError {
    /// The failing partition's label.
    pub partition: String,
    /// Human-readable cause.
    pub message: String,
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "partition {}: {}", self.partition, self.message)
    }
}

impl std::error::Error for PartitionError {}

/// One query as a partition sees it: the lowered plan for in-process
/// partitions, plus the serialized query text remote partitions put on
/// the wire (the query language is its own plan serialization).
#[derive(Clone, Copy, Debug)]
pub struct PartitionQuery<'a> {
    /// Lowered plan and root, for partitions evaluating in-process.
    pub plan: Option<(&'a Plan, NodeId)>,
    /// The query's textual form, for partitions evaluating remotely.
    /// Empty when the caller only ever executes locally.
    pub text: &'a str,
}

/// One partition of a document's position space that can evaluate a
/// query restricted to its window. Implemented by local executors (a
/// window over the in-memory instance) and by remote shards (a backend
/// reached over the serve protocol).
pub trait PartitionExec: Send + Sync {
    /// A short label for errors and stats (`"local"`, a backend name…).
    fn label(&self) -> &str;

    /// The left-endpoint window this partition covers.
    fn window(&self) -> Window;

    /// Evaluates the query restricted to [`PartitionExec::window`].
    fn execute(&self, query: &PartitionQuery<'_>) -> Result<RegionSet, PartitionError>;
}

/// An ordered set of partitions jointly covering a position space: the
/// abstract executor a plan runs against. Scatter-gathers the query
/// across partitions and merges with the zero-copy
/// [`RegionSet::concat`] path (per-partition outputs keep their lefts
/// inside their windows, so concatenation in window order is globally
/// sorted by construction).
pub struct PartitionSet<'a> {
    parts: Vec<Box<dyn PartitionExec + 'a>>,
}

impl<'a> PartitionSet<'a> {
    /// A set with one partition covering everything — the single-node
    /// fast path (no scatter, no merge).
    pub fn single(part: Box<dyn PartitionExec + 'a>) -> PartitionSet<'a> {
        PartitionSet { parts: vec![part] }
    }

    /// A set from ordered partitions. Panics unless windows are
    /// non-overlapping and ascending (`parts[i].window().hi ==
    /// parts[i+1].window().lo`) — the precondition for the ordered
    /// concat to be byte-identical to an unpartitioned run.
    pub fn from_parts(parts: Vec<Box<dyn PartitionExec + 'a>>) -> PartitionSet<'a> {
        assert!(!parts.is_empty(), "a partition set needs a partition");
        for pair in parts.windows(2) {
            assert!(
                pair[0].window().hi == pair[1].window().lo,
                "partition windows must tile: {} then {}",
                pair[0].window(),
                pair[1].window()
            );
        }
        PartitionSet { parts }
    }

    /// Number of partitions.
    pub fn len(&self) -> usize {
        self.parts.len()
    }

    /// True when the set is a single whole-space partition.
    pub fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }

    /// The partitions, in window order.
    pub fn parts(&self) -> &[Box<dyn PartitionExec + 'a>] {
        &self.parts
    }

    /// Scatter-gathers `query` across the partitions and merges the
    /// partial results in window order. Fails with the first partition's
    /// error (after all partitions were attempted, so a caller retrying
    /// one failed shard does not re-run the healthy ones' work on the
    /// remote side — their results are simply discarded here).
    pub fn execute(&self, query: &PartitionQuery<'_>) -> Result<RegionSet, PartitionError> {
        if self.parts.len() == 1 {
            return self.parts[0].execute(query);
        }
        PartitionMetrics::get().scatter.inc();
        let partials: Vec<Result<RegionSet, PartitionError>> =
            self.parts.iter().map(|p| p.execute(query)).collect();
        let mut sets = Vec::with_capacity(partials.len());
        for partial in partials {
            sets.push(partial?);
        }
        Ok(RegionSet::concat(&sets))
    }
}

/// A [`PartitionExec`] over a local instance: evaluates plans with
/// [`execute_range`]. The "local segment slice" implementation of the
/// seam — remote implementations live in the serving tier.
pub struct LocalPartition<'a, W: WordIndex + Sync> {
    inst: &'a Instance<W>,
    cfg: ExecConfig,
    window: Window,
}

impl<'a, W: WordIndex + Sync> LocalPartition<'a, W> {
    /// A local partition of `inst` covering `window`.
    pub fn new(inst: &'a Instance<W>, cfg: ExecConfig, window: Window) -> LocalPartition<'a, W> {
        LocalPartition { inst, cfg, window }
    }
}

impl<'a, W: WordIndex + Sync> PartitionExec for LocalPartition<'a, W> {
    fn label(&self) -> &str {
        "local"
    }

    fn window(&self) -> Window {
        self.window
    }

    fn execute(&self, query: &PartitionQuery<'_>) -> Result<RegionSet, PartitionError> {
        let (plan, root) = query.plan.ok_or_else(|| PartitionError {
            partition: "local".to_owned(),
            message: "local partitions need a lowered plan".to_owned(),
        })?;
        Ok(execute_range(plan, root, self.inst, &self.cfg, self.window))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute;
    use crate::expr::Expr;
    use crate::instance::InstanceBuilder;
    use crate::region::region;
    use crate::schema::Schema;
    use crate::seg::segment_bounds;

    fn sample() -> (Schema, Instance) {
        let schema = Schema::new(["A", "B"]);
        let inst = InstanceBuilder::new(schema.clone())
            .add("A", region(0, 9))
            .add("B", region(1, 8))
            .add("A", region(2, 5))
            .add("B", region(12, 20))
            .add("A", region(13, 17))
            .add("A", region(21, 30))
            .add("B", region(22, 25))
            .occurrence("x", 3, 1)
            .occurrence("x", 14, 1)
            .occurrence("x", 23, 1)
            .build_valid();
        (schema, inst)
    }

    fn exprs(schema: &Schema) -> Vec<Expr> {
        let a = Expr::name(schema.expect_id("A"));
        let b = Expr::name(schema.expect_id("B"));
        vec![
            a.clone(),
            a.clone().union(b.clone()),
            a.clone().intersect(b.clone()),
            a.clone().diff(b.clone()),
            a.clone().including(b.clone()),
            a.clone().included_in(b.clone()),
            a.clone().before(b.clone()),
            a.clone().after(b.clone()),
            a.clone().select("x"),
            a.clone()
                .including(b.clone())
                .union(a.clone().included_in(b.clone()))
                .select("x"),
            a.clone().before(b.clone()).after(b.clone()),
            a.including(b.clone()).diff(b),
        ]
    }

    #[test]
    fn window_restrict_is_a_left_range() {
        let (_, inst) = sample();
        let a = inst.regions_of(crate::schema::NameId::from_index(0));
        let w = Window::new(2, 19);
        let r = w.restrict(a);
        assert!(r.iter().all(|x| x.left() >= 2 && x.left() < 19));
        assert_eq!(r.len(), 2);
        assert!(r.shares_buf(a), "restriction is zero-copy");
        assert!(Window::ALL.restrict(a).len() == a.len());
        assert!(Window::new(5, 5).restrict(a).is_empty());
    }

    #[test]
    fn partner_windows_match_the_rule_table() {
        let w = Window::new(10, 20);
        assert_eq!(partner_window(BinOp::Union, w), w);
        assert_eq!(partner_window(BinOp::Intersect, w), w);
        assert_eq!(partner_window(BinOp::Diff, w), w);
        assert_eq!(
            partner_window(BinOp::Including, w),
            Window::new(10, Pos::MAX)
        );
        assert_eq!(partner_window(BinOp::IncludedIn, w), Window::new(0, 20));
        assert_eq!(partner_window(BinOp::Before, w), Window::ALL);
        assert_eq!(partner_window(BinOp::After, w), Window::ALL);
    }

    #[test]
    fn planner_windows_cover_only_the_roots_cone() {
        let (schema, _) = sample();
        let a = Expr::name(schema.expect_id("A"));
        let b = Expr::name(schema.expect_id("B"));
        let mut plan = Plan::new();
        let unused = plan.lower(&a.clone().union(b.clone()));
        let root = plan.lower(&a.clone().including(b.clone()));
        let w = Window::new(5, 15);
        let planner = PartitionPlanner::plan(&plan, root, w);
        assert_eq!(planner.window_of(root), Some(w));
        assert_eq!(planner.window_of(unused), None, "outside the cone");
        // Node 1 is B (children lower first); `including` demands it as
        // a suffix window.
        assert_eq!(planner.window_of(1), Some(Window::new(5, Pos::MAX)));
    }

    #[test]
    fn range_execution_equals_restricted_full_execution() {
        let (schema, inst) = sample();
        let cfg = ExecConfig::sequential();
        let windows = [
            Window::ALL,
            Window::new(0, 13),
            Window::new(13, Pos::MAX),
            Window::new(2, 20),
            Window::new(19, 22),
            Window::new(25, 25),
        ];
        for e in exprs(&schema) {
            let mut plan = Plan::new();
            let root = plan.lower(&e);
            let full = execute(&plan, &inst, &cfg);
            for w in windows {
                let got = execute_range(&plan, root, &inst, &cfg, w);
                let want = w.restrict(full.result(root));
                assert_eq!(got, want, "expr {e}, window {w}");
            }
        }
    }

    #[test]
    fn concatenated_shards_equal_the_whole() {
        let (schema, inst) = sample();
        let cfg = ExecConfig::sequential();
        for n in [1usize, 2, 3, 5] {
            let bounds = segment_bounds(31, n);
            for e in exprs(&schema) {
                let mut plan = Plan::new();
                let root = plan.lower(&e);
                let full = execute(&plan, &inst, &cfg);
                let parts: Vec<RegionSet> = (0..n)
                    .map(|i| {
                        let hi = if i + 1 == n { Pos::MAX } else { bounds[i + 1] };
                        execute_range(&plan, root, &inst, &cfg, Window::new(bounds[i], hi))
                    })
                    .collect();
                assert_eq!(
                    RegionSet::concat(&parts),
                    *full.result(root),
                    "expr {e}, {n} shards"
                );
            }
        }
    }

    #[test]
    fn partition_set_scatter_gathers_local_partitions() {
        let (schema, inst) = sample();
        for e in exprs(&schema) {
            let mut plan = Plan::new();
            let root = plan.lower(&e);
            let full = execute(&plan, &inst, &ExecConfig::sequential());
            let bounds = segment_bounds(31, 3);
            let parts: Vec<Box<dyn PartitionExec + '_>> = (0..3)
                .map(|i| {
                    let hi = if i == 2 { Pos::MAX } else { bounds[i + 1] };
                    Box::new(LocalPartition::new(
                        &inst,
                        ExecConfig::sequential(),
                        Window::new(bounds[i], hi),
                    )) as Box<dyn PartitionExec + '_>
                })
                .collect();
            let set = PartitionSet::from_parts(parts);
            let query = PartitionQuery {
                plan: Some((&plan, root)),
                text: "",
            };
            assert_eq!(set.execute(&query).unwrap(), *full.result(root), "expr {e}");
        }
    }

    #[test]
    #[should_panic(expected = "must tile")]
    fn overlapping_partitions_are_rejected() {
        let (_, inst) = sample();
        let parts: Vec<Box<dyn PartitionExec + '_>> = vec![
            Box::new(LocalPartition::new(
                &inst,
                ExecConfig::sequential(),
                Window::new(0, 20),
            )),
            Box::new(LocalPartition::new(
                &inst,
                ExecConfig::sequential(),
                Window::new(10, Pos::MAX),
            )),
        ];
        PartitionSet::from_parts(parts);
    }
}
