//! Branchless / chunked inner-loop kernels over the `u32` endpoint
//! columns.
//!
//! The algebra's hot loops — the inclusion sweeps, the `precedes` boundary
//! filter, and result materialization — all reduce to elementwise compares
//! over one or two `u32` columns plus a gather of the surviving rows. This
//! module provides those loops in two shapes:
//!
//! * **chunked**: explicit [`LANES`]-wide blocks that compute a bitmask of
//!   compare results per block, written so the compiler can keep the whole
//!   block in vector registers (portable `std::simd`-style code on stable
//!   Rust), with a scalar tail for the last partial block;
//! * **scalar**: a plain per-element loop, always compiled, used on
//!   targets or builds where the chunked path is disabled.
//!
//! Which shape runs is decided by [`mode`]: the `simd` cargo feature
//! (default on) picks the chunked path under [`Mode::Auto`], and tests can
//! force either path at runtime with [`set_mode`] to prove byte-identity.
//! Every chunked kernel invocation increments the `exec.kernel_simd`
//! counter, and `exec.kernel_scalar_tail` counts invocations that had to
//! finish a partial block element-at-a-time — both are deterministic for
//! a fixed workload, so the bench gate can diff them across runs.
//!
//! Results are produced as a [`Bitmask`] over the input rows and then
//! materialized in one **bitmask-gather** pass ([`compress`]) instead of a
//! per-element `push` inside the compare loop; contiguous masks are
//! detected so callers can keep zero-copy slice results.

use crate::region::Pos;
use std::sync::atomic::{AtomicU8, Ordering as AtomicOrdering};
use std::sync::{Arc, OnceLock};

/// Width of one chunked block: eight `u32` lanes (one 256-bit vector).
pub const LANES: usize = 8;

/// Which kernel shape [`mode`] selects.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Chunked when the `simd` feature is enabled, scalar otherwise.
    Auto,
    /// Always the scalar loops (used by tests and `--no-default-features`
    /// parity checks).
    ForceScalar,
    /// Always the chunked loops, even without the `simd` feature.
    ForceChunked,
}

static MODE: AtomicU8 = AtomicU8::new(0);

/// Sets the process-wide kernel mode. Intended for tests and experiments;
/// the default ([`Mode::Auto`]) follows the `simd` cargo feature.
pub fn set_mode(mode: Mode) {
    let v = match mode {
        Mode::Auto => 0,
        Mode::ForceScalar => 1,
        Mode::ForceChunked => 2,
    };
    MODE.store(v, AtomicOrdering::Relaxed);
}

/// The current process-wide kernel mode.
pub fn mode() -> Mode {
    match MODE.load(AtomicOrdering::Relaxed) {
        1 => Mode::ForceScalar,
        2 => Mode::ForceChunked,
        _ => Mode::Auto,
    }
}

/// True when the chunked (vector-shaped) loops should run.
#[inline]
pub fn chunked_enabled() -> bool {
    match mode() {
        Mode::Auto => cfg!(feature = "simd"),
        Mode::ForceScalar => false,
        Mode::ForceChunked => true,
    }
}

/// Cached handles into the `tr_obs` metrics registry.
struct KernelMetrics {
    /// `exec.kernel_simd`: chunked kernel invocations.
    simd: Arc<tr_obs::Counter>,
    /// `exec.kernel_scalar_tail`: chunked invocations that finished a
    /// partial block with the scalar tail loop.
    scalar_tail: Arc<tr_obs::Counter>,
}

impl KernelMetrics {
    fn get() -> &'static KernelMetrics {
        static METRICS: OnceLock<KernelMetrics> = OnceLock::new();
        METRICS.get_or_init(|| KernelMetrics {
            simd: tr_obs::counter("exec.kernel_simd"),
            scalar_tail: tr_obs::counter("exec.kernel_scalar_tail"),
        })
    }
}

/// Records one chunked kernel invocation over `len` elements.
#[inline]
fn count_chunked(len: usize) {
    count_chunked_runs(1, u64::from(!len.is_multiple_of(LANES)));
}

/// Records a batch of chunked kernel invocations at once: `runs` total,
/// `tails` of which ended on a partial block. Sweeps that invoke a mask
/// kernel once per window run ([`mask_included_run`]) accumulate these
/// locally and flush once per sweep, keeping the per-run path free of
/// atomics while reporting totals identical to per-invocation counting.
#[inline]
pub fn count_chunked_runs(runs: u64, tails: u64) {
    if runs == 0 {
        return;
    }
    let m = KernelMetrics::get();
    m.simd.add(runs);
    if tails != 0 {
        m.scalar_tail.add(tails);
    }
}

// ---------------------------------------------------------------------------
// Bitmask
// ---------------------------------------------------------------------------

/// A bitmask over input rows: bit `i` set means row `i` survives.
///
/// Backed by `u64` words so chunked kernels can deposit whole blocks of
/// compare results at once and [`compress`] can gather survivors with
/// `trailing_zeros` instead of testing every row.
pub struct Bitmask {
    words: Vec<u64>,
    len: usize,
}

/// Shape of a mask's set bits, used to pick the materialization strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MaskShape {
    /// No bits set.
    Empty,
    /// All set bits form one contiguous run `[start, end)`.
    Contiguous(usize, usize),
    /// Set bits are scattered; the payload is their count.
    Scattered(usize),
}

impl Bitmask {
    /// An all-zero mask over `len` rows.
    pub fn zeros(len: usize) -> Bitmask {
        Bitmask {
            words: vec![0u64; len.div_ceil(64)],
            len,
        }
    }

    /// Number of rows the mask covers.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the mask covers no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets bit `i`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i >> 6] |= 1u64 << (i & 63);
    }

    /// Reads bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i >> 6] >> (i & 63) & 1 != 0
    }

    /// ORs the low `n` bits of `bits` into positions `i..i + n`
    /// (`n ≤ 64`). Bits at `n` and above must be clear.
    #[inline]
    pub fn or_bits(&mut self, i: usize, bits: u64, n: usize) {
        debug_assert!(n <= 64 && i + n <= self.len);
        debug_assert!(n == 64 || bits >> n == 0, "stray bits above n");
        if n == 0 {
            return;
        }
        let w = i >> 6;
        let off = i & 63;
        self.words[w] |= bits << off;
        if off + n > 64 {
            // off > 0 here (off + n > 64 with n ≤ 64), so 64 - off < 64.
            self.words[w + 1] |= bits >> (64 - off);
        }
    }

    /// Raw words (low bit of word 0 is row 0).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// ORs another mask of the same length into this one (used to stitch
    /// the disjoint per-chunk masks of a parallel sweep).
    pub fn or_mask(&mut self, other: &Bitmask) {
        debug_assert_eq!(self.len, other.len);
        for (w, &o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Classifies the set bits: empty, one contiguous run, or scattered.
    pub fn shape(&self) -> MaskShape {
        let mut count = 0usize;
        let mut first = None;
        let mut last = 0usize;
        for (w, &word) in self.words.iter().enumerate() {
            if word == 0 {
                continue;
            }
            count += word.count_ones() as usize;
            if first.is_none() {
                first = Some(w * 64 + word.trailing_zeros() as usize);
            }
            last = w * 64 + 63 - word.leading_zeros() as usize;
        }
        match first {
            None => MaskShape::Empty,
            Some(start) if count == last + 1 - start => MaskShape::Contiguous(start, last + 1),
            _ => MaskShape::Scattered(count),
        }
    }
}

/// Gathers the rows selected by `mask` out of the two columns in one
/// bitmask-driven pass (`trailing_zeros` per survivor, no per-row branch
/// on non-survivors). `count` must equal `mask.count()`.
pub fn compress(
    lefts: &[Pos],
    rights: &[Pos],
    mask: &Bitmask,
    count: usize,
) -> (Vec<Pos>, Vec<Pos>) {
    debug_assert_eq!(lefts.len(), rights.len());
    debug_assert_eq!(lefts.len(), mask.len());
    let mut out_l = Vec::with_capacity(count);
    let mut out_r = Vec::with_capacity(count);
    for (w, &word) in mask.words.iter().enumerate() {
        let mut bits = word;
        let base = w * 64;
        while bits != 0 {
            let i = base + bits.trailing_zeros() as usize;
            out_l.push(lefts[i]);
            out_r.push(rights[i]);
            bits &= bits - 1;
        }
    }
    (out_l, out_r)
}

// ---------------------------------------------------------------------------
// Elementwise mask kernels
// ---------------------------------------------------------------------------

/// Sets `mask[lo..hi]` bits where `vals[k] < bound` (the `precedes`
/// boundary filter: `right(x) < max{left(s)}`).
pub fn mask_lt(vals: &[Pos], lo: usize, hi: usize, bound: Pos, mask: &mut Bitmask) {
    debug_assert!(lo <= hi && hi <= vals.len());
    if lo >= hi {
        return;
    }
    if chunked_enabled() {
        count_chunked(hi - lo);
        let mut i = lo;
        while i + LANES <= hi {
            let block = &vals[i..i + LANES];
            let mut bits = 0u64;
            // Fixed-width compare block: one flag per lane, no branches.
            for (k, &v) in block.iter().enumerate() {
                bits |= ((v < bound) as u64) << k;
            }
            mask.or_bits(i, bits, LANES);
            i += LANES;
        }
        // Scalar tail: the final partial block (the whole range when it
        // is shorter than a block).
        for (k, &v) in vals[i..hi].iter().enumerate() {
            if v < bound {
                mask.set(i + k);
            }
        }
    } else {
        for (k, &v) in vals[lo..hi].iter().enumerate() {
            if v < bound {
                mask.set(lo + k);
            }
        }
    }
}

/// One run of the `included_in` sweep: for rows `lo..hi` of `(lefts,
/// rights)` the containing-window state is constant — `run_max` is the
/// largest right endpoint among partners with a strictly smaller left
/// (`valid` when any exist), and `eq = (sl, sr)` is the head of the
/// equal-left partner group, if any. Sets bit `k` when the row is
/// strictly included in some partner.
///
/// Runs can be a handful of rows each and a sweep issues one call per
/// run, so this kernel does **not** touch the dispatch counters itself —
/// the sweep tallies its runs and flushes them in one
/// [`count_chunked_runs`] call.
#[allow(clippy::too_many_arguments)]
pub fn mask_included_run(
    lefts: &[Pos],
    rights: &[Pos],
    lo: usize,
    hi: usize,
    run_max: Pos,
    has_prev: bool,
    eq: Option<(Pos, Pos)>,
    mask: &mut Bitmask,
) {
    debug_assert!(lo <= hi && hi <= lefts.len());
    if lo >= hi {
        return;
    }
    let (sl, sr, has_eq) = match eq {
        Some((l, r)) => (l, r, true),
        None => (0, 0, false),
    };
    if chunked_enabled() {
        let hp = has_prev as u64;
        let he = has_eq as u64;
        let mut i = lo;
        while i + LANES <= hi {
            let mut bits = 0u64;
            for k in 0..LANES {
                let l = lefts[i + k];
                let r = rights[i + k];
                // Branchless: prior-window hit OR equal-left-group hit.
                let a = (r <= run_max) as u64 & hp;
                let b = (l == sl) as u64 & ((r < sr) as u64) & he;
                bits |= (a | b) << k;
            }
            mask.or_bits(i, bits, LANES);
            i += LANES;
        }
        // Scalar tail: the final partial block — on short runs (the
        // common case for one-child-per-parent data) this is the whole
        // run, so a sub-block invocation costs what the scalar path does.
        for k in i..hi {
            let hit =
                (has_prev && rights[k] <= run_max) || (has_eq && lefts[k] == sl && rights[k] < sr);
            if hit {
                mask.set(k);
            }
        }
    } else {
        for k in lo..hi {
            let hit =
                (has_prev && rights[k] <= run_max) || (has_eq && lefts[k] == sl && rights[k] < sr);
            if hit {
                mask.set(k);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Branchless searches
// ---------------------------------------------------------------------------

/// First index in the sorted slice with `vals[i] >= bound`, by branchless
/// binary search (conditional-add, no compare/jump per step).
pub fn lower_bound(vals: &[Pos], bound: Pos) -> usize {
    let mut lo = 0usize;
    let mut len = vals.len();
    while len > 1 {
        let half = len / 2;
        lo += ((vals[lo + half - 1] < bound) as usize) * half;
        len -= half;
    }
    if len == 1 {
        lo += (vals[lo] < bound) as usize;
    }
    lo
}

/// First index in the sorted slice with `vals[i] > bound` (branchless).
pub fn upper_bound(vals: &[Pos], bound: Pos) -> usize {
    let mut lo = 0usize;
    let mut len = vals.len();
    while len > 1 {
        let half = len / 2;
        lo += ((vals[lo + half - 1] <= bound) as usize) * half;
        len -= half;
    }
    if len == 1 {
        lo += (vals[lo] <= bound) as usize;
    }
    lo
}

/// First index `i ≥ from` in the sorted slice with `vals[i] > bound`,
/// found by galloping out from `from` and finishing with the branchless
/// binary search — O(log distance) instead of O(log n), which makes the
/// inclusion sweeps linear when successive probes land close together.
pub fn gallop_upper_bound(vals: &[Pos], from: usize, bound: Pos) -> usize {
    let n = vals.len();
    let mut lo = from;
    let mut hi = from;
    let mut step = 1usize;
    loop {
        if hi >= n {
            hi = n;
            break;
        }
        if vals[hi] > bound {
            break;
        }
        lo = hi + 1;
        hi += step;
        step <<= 1;
    }
    lo + upper_bound(&vals[lo..hi], bound)
}

/// First index `i ≥ from` with `(lefts[i], rights[i]) ≥ (l, r)` in the
/// storage order (`left asc, right desc`), by galloping. Used by the
/// merge kernels to bulk-skip long single-sided runs.
pub fn gallop_lower_bound_lr(lefts: &[Pos], rights: &[Pos], from: usize, l: Pos, r: Pos) -> usize {
    #[inline]
    fn lt(al: Pos, ar: Pos, bl: Pos, br: Pos) -> bool {
        // (al, ar) sorts strictly before (bl, br) under (left asc, right desc).
        al < bl || (al == bl && ar > br)
    }
    let n = lefts.len();
    let mut lo = from;
    let mut hi = from;
    let mut step = 1usize;
    loop {
        if hi >= n {
            hi = n;
            break;
        }
        if !lt(lefts[hi], rights[hi], l, r) {
            break;
        }
        lo = hi + 1;
        hi += step;
        step <<= 1;
    }
    // Branchless binary search over [lo, hi).
    let mut len = hi - lo;
    while len > 1 {
        let half = len / 2;
        let p = lo + half - 1;
        lo += (lt(lefts[p], rights[p], l, r) as usize) * half;
        len -= half;
    }
    if len == 1 {
        lo += lt(lefts[lo], rights[lo], l, r) as usize;
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_match_partition_point() {
        let v: Vec<Pos> = vec![1, 3, 3, 3, 7, 9, 9, 12];
        for b in 0..14 {
            assert_eq!(lower_bound(&v, b), v.partition_point(|&x| x < b), "lb {b}");
            assert_eq!(upper_bound(&v, b), v.partition_point(|&x| x <= b), "ub {b}");
            for from in 0..=v.len() {
                let want = from + v[from..].partition_point(|&x| x <= b);
                assert_eq!(gallop_upper_bound(&v, from, b), want, "gallop {from} {b}");
            }
        }
        assert_eq!(lower_bound(&[], 5), 0);
        assert_eq!(upper_bound(&[], 5), 0);
        assert_eq!(gallop_upper_bound(&[], 0, 5), 0);
    }

    #[test]
    fn gallop_lr_matches_linear_scan() {
        // Storage order: (left asc, right desc).
        let lefts: Vec<Pos> = vec![0, 0, 2, 2, 2, 5, 9];
        let rights: Vec<Pos> = vec![9, 4, 8, 8, 3, 5, 12];
        let lt = |al: Pos, ar: Pos, bl: Pos, br: Pos| al < bl || (al == bl && ar > br);
        for from in 0..=lefts.len() {
            for &(l, r) in &[(0, 9), (0, 5), (2, 8), (2, 2), (4, 4), (9, 12), (10, 0)] {
                let want = (from..lefts.len())
                    .find(|&i| !lt(lefts[i], rights[i], l, r))
                    .unwrap_or(lefts.len());
                assert_eq!(
                    gallop_lower_bound_lr(&lefts, &rights, from, l, r),
                    want,
                    "from={from} key=({l},{r})"
                );
            }
        }
    }

    #[test]
    fn mask_shapes_and_compress() {
        let mut m = Bitmask::zeros(130);
        assert_eq!(m.shape(), MaskShape::Empty);
        for i in 40..100 {
            m.set(i);
        }
        assert_eq!(m.shape(), MaskShape::Contiguous(40, 100));
        m.set(129);
        assert_eq!(m.shape(), MaskShape::Scattered(61));
        assert_eq!(m.count(), 61);
        assert!(m.get(40) && m.get(99) && m.get(129) && !m.get(100));

        let lefts: Vec<Pos> = (0..130).collect();
        let rights: Vec<Pos> = (0..130).map(|x| x + 1).collect();
        let (l, r) = compress(&lefts, &rights, &m, m.count());
        let want: Vec<Pos> = (40..100).chain([129]).collect();
        assert_eq!(l, want);
        assert_eq!(r, want.iter().map(|x| x + 1).collect::<Vec<_>>());
    }

    #[test]
    fn or_bits_straddles_word_boundaries() {
        let mut m = Bitmask::zeros(130);
        m.or_bits(60, 0b1111_1111, 8); // straddles word 0 / word 1
        for i in 60..68 {
            assert!(m.get(i), "bit {i}");
        }
        assert!(!m.get(59) && !m.get(68));
        m.or_bits(128, 0b11, 2);
        assert!(m.get(128) && m.get(129));
    }

    #[test]
    fn chunked_and_scalar_masks_agree() {
        let vals: Vec<Pos> = (0..200).map(|i| (i * 7919) % 251).collect();
        for &bound in &[0, 1, 100, 250, 251] {
            for lo in [0usize, 3, 63, 64, 65] {
                let hi = vals.len() - lo.min(5);
                let mut a = Bitmask::zeros(vals.len());
                let mut b = Bitmask::zeros(vals.len());
                set_mode(Mode::ForceChunked);
                mask_lt(&vals, lo, hi, bound, &mut a);
                set_mode(Mode::ForceScalar);
                mask_lt(&vals, lo, hi, bound, &mut b);
                set_mode(Mode::Auto);
                assert_eq!(a.words(), b.words(), "bound={bound} lo={lo}");
            }
        }
    }
}
