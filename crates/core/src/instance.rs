//! Instances of a region index (Definition 2.1) and their hierarchical
//! validation (Section 2.1's nesting assumption).
//!
//! An [`Instance`] maps every region name of a [`Schema`] to a
//! [`RegionSet`], and carries a word index. Construction validates the
//! paper's standing assumptions:
//!
//! * every region belongs to exactly one region set, and
//! * every two regions are either disjoint or one *strictly* includes the
//!   other (no partial overlap, no two distinct names on identical
//!   endpoints).
//!
//! The [`Forest`] view materializes the direct-inclusion structure (parents
//! and children), which is what the FMFT model correspondence (Definition
//! 3.2) and the extended operators (`⊃_d`, `⊂_d`) are defined on.

use crate::region::Region;
use crate::schema::{NameId, Schema};
use crate::set::RegionSet;
use crate::word::{MatchPointIndex, WordIndex};
use std::fmt;

/// Errors detected while validating an instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InstanceError {
    /// Two regions overlap without one strictly including the other.
    PartialOverlap {
        /// The earlier region (in sorted order).
        a: Region,
        /// The later, partially-overlapping region.
        b: Region,
    },
    /// The same endpoints appear under two different region names.
    DuplicateRegion {
        /// The offending endpoints.
        region: Region,
        /// The first name the region appears under.
        first: NameId,
        /// The second name the region appears under.
        second: NameId,
    },
}

impl fmt::Display for InstanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstanceError::PartialOverlap { a, b } => {
                write!(f, "regions {a} and {b} partially overlap; instances must be hierarchical")
            }
            InstanceError::DuplicateRegion { region, first, second } => write!(
                f,
                "region {region} appears under two names ({:?} and {:?}); every region belongs to one set",
                first, second
            ),
        }
    }
}

impl std::error::Error for InstanceError {}

/// A validated hierarchical instance of a region index.
#[derive(Clone, PartialEq, Eq)]
pub struct Instance<W = MatchPointIndex> {
    schema: Schema,
    /// One region set per schema name, indexed by `NameId::index()`.
    sets: Vec<RegionSet>,
    /// All named regions merged, in sorted order, with their names.
    all: Vec<(Region, NameId)>,
    word: W,
}

impl<W: Default> Instance<W> {
    /// An instance with empty region sets and a default word index.
    pub fn empty(schema: Schema) -> Instance<W> {
        let sets = vec![RegionSet::new(); schema.len()];
        Instance {
            schema,
            sets,
            all: Vec::new(),
            word: W::default(),
        }
    }
}

impl<W> Instance<W> {
    /// Builds and validates an instance from per-name region sets.
    pub fn build(
        schema: Schema,
        mut sets: Vec<RegionSet>,
        word: W,
    ) -> Result<Instance<W>, InstanceError> {
        assert_eq!(sets.len(), schema.len(), "one region set per schema name");
        // Merge all regions, remembering names, and validate.
        let mut all: Vec<(Region, NameId)> =
            Vec::with_capacity(sets.iter().map(RegionSet::len).sum());
        for (i, set) in sets.iter().enumerate() {
            let id = NameId::from_index(i);
            all.extend(set.iter().map(|r| (r, id)));
        }
        all.sort_unstable();
        for w in all.windows(2) {
            let ((a, na), (b, nb)) = (w[0], w[1]);
            if a == b {
                return Err(InstanceError::DuplicateRegion {
                    region: a,
                    first: na,
                    second: nb,
                });
            }
        }
        // Hierarchy sweep: sorted order visits would-be parents first.
        let mut stack: Vec<Region> = Vec::new();
        for &(r, _) in &all {
            while let Some(&top) = stack.last() {
                if top.includes(r) {
                    break;
                }
                if top.overlaps(r) {
                    return Err(InstanceError::PartialOverlap { a: top, b: r });
                }
                stack.pop();
            }
            stack.push(r);
        }
        // Normalize (defensive): sets may have been handed over unsorted only
        // through from_sorted misuse; RegionSet maintains its own invariant.
        for s in &mut sets {
            debug_assert!(s.validate().is_ok(), "{}", s.validate().unwrap_err());
        }
        Ok(Instance {
            schema,
            sets,
            all,
            word,
        })
    }

    /// The schema this instance instantiates.
    #[inline]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The instance `R_i(I)` of a region name.
    #[inline]
    pub fn regions_of(&self, id: NameId) -> &RegionSet {
        &self.sets[id.index()]
    }

    /// The instance of a region name, looked up by string.
    pub fn regions_of_name(&self, name: &str) -> &RegionSet {
        self.regions_of(self.schema.expect_id(name))
    }

    /// All named regions with their names, in sorted order.
    #[inline]
    pub fn all_with_names(&self) -> &[(Region, NameId)] {
        &self.all
    }

    /// All named regions as a set.
    pub fn all_regions(&self) -> RegionSet {
        RegionSet::from_sorted(self.all.iter().map(|&(r, _)| r).collect())
    }

    /// Total number of regions across all names.
    #[inline]
    pub fn len(&self) -> usize {
        self.all.len()
    }

    /// True if the instance has no regions.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.all.is_empty()
    }

    /// The name a region belongs to, if it is in the instance.
    pub fn name_of(&self, r: Region) -> Option<NameId> {
        self.all
            .binary_search_by(|&(x, _)| x.cmp(&r))
            .ok()
            .map(|i| self.all[i].1)
    }

    /// True if the region is in the instance (under any name).
    pub fn contains(&self, r: Region) -> bool {
        self.name_of(r).is_some()
    }

    /// The word index.
    #[inline]
    pub fn word_index(&self) -> &W {
        &self.word
    }

    /// Mutable access to the word index. Note the word index is not part of
    /// the hierarchy invariant, so mutation cannot invalidate the instance.
    #[inline]
    pub fn word_index_mut(&mut self) -> &mut W {
        &mut self.word
    }

    /// Materializes the direct-inclusion forest over the named regions.
    pub fn forest(&self) -> Forest {
        Forest::new(&self.all)
    }

    /// The nesting depth: the length of the longest chain
    /// `r_1 ⊃ r_2 ⊃ … ⊃ r_d` of regions in the instance.
    pub fn nesting_depth(&self) -> usize {
        let mut max_depth = 0usize;
        let mut stack: Vec<Region> = Vec::new();
        for &(r, _) in &self.all {
            while let Some(&top) = stack.last() {
                if top.includes(r) {
                    break;
                }
                stack.pop();
            }
            stack.push(r);
            max_depth = max_depth.max(stack.len());
        }
        max_depth
    }
}

impl<W: Clone> Instance<W> {
    /// Returns a copy of the instance without the given regions (the
    /// *deleted versions* of Section 4.1). The word index is shared
    /// unchanged — Definition 2.1 defines `W` on regions, and surviving
    /// regions keep their text.
    pub fn without_regions(&self, doomed: &RegionSet) -> Instance<W> {
        let sets: Vec<RegionSet> = self.sets.iter().map(|s| s.difference(doomed)).collect();
        let all: Vec<(Region, NameId)> = self
            .all
            .iter()
            .copied()
            .filter(|&(r, _)| !doomed.contains(r))
            .collect();
        Instance {
            schema: self.schema.clone(),
            sets,
            all,
            word: self.word.clone(),
        }
    }

    /// Returns a copy keeping only the given regions.
    pub fn restricted_to(&self, kept: &RegionSet) -> Instance<W> {
        let sets: Vec<RegionSet> = self.sets.iter().map(|s| s.intersect(kept)).collect();
        let all: Vec<(Region, NameId)> = self
            .all
            .iter()
            .copied()
            .filter(|&(r, _)| kept.contains(r))
            .collect();
        Instance {
            schema: self.schema.clone(),
            sets,
            all,
            word: self.word.clone(),
        }
    }
}

impl<W: WordIndex> Instance<W> {
    /// `σ_p(R)` for an explicit set: the regions whose text matches `p`.
    pub fn select(&self, set: &RegionSet, pattern: &str) -> RegionSet {
        set.filter(|r| self.word.matches(r, pattern))
    }
}

impl<W> fmt::Debug for Instance<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut m = f.debug_map();
        for id in self.schema.ids() {
            m.entry(&self.schema.name(id), &self.sets[id.index()]);
        }
        m.finish()
    }
}

/// A convenience builder for instances over a [`MatchPointIndex`].
pub struct InstanceBuilder {
    schema: Schema,
    sets: Vec<RegionSet>,
    word: MatchPointIndex,
}

impl InstanceBuilder {
    /// Starts a builder for the given schema.
    pub fn new(schema: Schema) -> InstanceBuilder {
        let sets = vec![RegionSet::new(); schema.len()];
        InstanceBuilder {
            schema,
            sets,
            word: MatchPointIndex::new(),
        }
    }

    /// Adds a region under a name (by string).
    pub fn add(mut self, name: &str, r: Region) -> InstanceBuilder {
        let id = self.schema.expect_id(name);
        self.sets[id.index()].insert(r);
        self
    }

    /// Adds a region under a name id.
    pub fn add_id(mut self, id: NameId, r: Region) -> InstanceBuilder {
        self.sets[id.index()].insert(r);
        self
    }

    /// In-place variant of [`InstanceBuilder::add_id`], for loops.
    pub fn push_id(&mut self, id: NameId, r: Region) {
        self.sets[id.index()].insert(r);
    }

    /// In-place variant of [`InstanceBuilder::occurrence`], for loops.
    pub fn push_occurrence(
        &mut self,
        pattern: &str,
        start: crate::region::Pos,
        len: crate::region::Pos,
    ) {
        self.word.add_occurrence(pattern, start, len);
    }

    /// Records a pattern occurrence in the word index.
    pub fn occurrence(
        mut self,
        pattern: &str,
        start: crate::region::Pos,
        len: crate::region::Pos,
    ) -> InstanceBuilder {
        self.word.add_occurrence(pattern, start, len);
        self
    }

    /// Validates and finishes the instance.
    pub fn build(self) -> Result<Instance, InstanceError> {
        Instance::build(self.schema, self.sets, self.word)
    }

    /// Validates and finishes, panicking on invalid input. For tests and
    /// examples with hand-written instances.
    pub fn build_valid(self) -> Instance {
        self.build()
            .expect("hand-written instance must be hierarchical")
    }
}

/// The direct-inclusion forest over an instance's regions.
///
/// Node indices follow the instance's sorted region order, so parents always
/// have smaller indices than their children.
#[derive(Debug, Clone)]
pub struct Forest {
    nodes: Vec<(Region, NameId)>,
    parent: Vec<Option<usize>>,
    children: Vec<Vec<usize>>,
    roots: Vec<usize>,
}

impl Forest {
    fn new(all: &[(Region, NameId)]) -> Forest {
        let n = all.len();
        let mut parent = vec![None; n];
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut roots = Vec::new();
        let mut stack: Vec<usize> = Vec::new();
        for (i, &(r, _)) in all.iter().enumerate() {
            while let Some(&top) = stack.last() {
                if all[top].0.includes(r) {
                    break;
                }
                stack.pop();
            }
            match stack.last() {
                Some(&p) => {
                    parent[i] = Some(p);
                    children[p].push(i);
                }
                None => roots.push(i),
            }
            stack.push(i);
        }
        Forest {
            nodes: all.to_vec(),
            parent,
            children,
            roots,
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the forest is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The region and name at a node index.
    #[inline]
    pub fn node(&self, i: usize) -> (Region, NameId) {
        self.nodes[i]
    }

    /// The node index of a region, if present.
    pub fn index_of(&self, r: Region) -> Option<usize> {
        self.nodes.binary_search_by(|&(x, _)| x.cmp(&r)).ok()
    }

    /// The parent node (the region that *directly includes* this one).
    #[inline]
    pub fn parent(&self, i: usize) -> Option<usize> {
        self.parent[i]
    }

    /// The children (regions this one directly includes), in text order.
    #[inline]
    pub fn children(&self, i: usize) -> &[usize] {
        &self.children[i]
    }

    /// The root nodes, in text order.
    #[inline]
    pub fn roots(&self) -> &[usize] {
        &self.roots
    }

    /// Depth of a node (roots have depth 1).
    pub fn depth(&self, mut i: usize) -> usize {
        let mut d = 1;
        while let Some(p) = self.parent[i] {
            d += 1;
            i = p;
        }
        d
    }

    /// Iterates `(index, region, name)` in sorted (pre-)order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, Region, NameId)> + '_ {
        self.nodes.iter().enumerate().map(|(i, &(r, n))| (i, r, n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::region;

    fn schema() -> Schema {
        Schema::new(["A", "B", "C"])
    }

    #[test]
    fn build_and_lookup() {
        let inst = InstanceBuilder::new(schema())
            .add("A", region(0, 9))
            .add("B", region(1, 4))
            .add("B", region(6, 8))
            .add("C", region(2, 3))
            .build_valid();
        assert_eq!(inst.len(), 4);
        assert_eq!(inst.regions_of_name("B").len(), 2);
        assert_eq!(
            inst.name_of(region(2, 3)),
            Some(inst.schema().expect_id("C"))
        );
        assert_eq!(inst.name_of(region(2, 4)), None);
        assert_eq!(inst.nesting_depth(), 3);
    }

    #[test]
    fn rejects_partial_overlap() {
        let err = InstanceBuilder::new(schema())
            .add("A", region(0, 5))
            .add("B", region(3, 9))
            .build()
            .unwrap_err();
        assert!(matches!(err, InstanceError::PartialOverlap { .. }));
    }

    #[test]
    fn rejects_same_region_under_two_names() {
        let err = InstanceBuilder::new(schema())
            .add("A", region(0, 5))
            .add("B", region(0, 5))
            .build()
            .unwrap_err();
        assert!(matches!(err, InstanceError::DuplicateRegion { .. }));
    }

    #[test]
    fn accepts_shared_endpoints_when_nested() {
        // [0..9] ⊃ [0..5] is strict inclusion despite the shared left end.
        let inst = InstanceBuilder::new(schema())
            .add("A", region(0, 9))
            .add("B", region(0, 5))
            .build();
        assert!(inst.is_ok());
    }

    #[test]
    fn forest_structure() {
        let inst = InstanceBuilder::new(schema())
            .add("A", region(0, 9))
            .add("B", region(1, 4))
            .add("C", region(2, 3))
            .add("B", region(6, 8))
            .add("A", region(20, 30))
            .build_valid();
        let f = inst.forest();
        assert_eq!(f.len(), 5);
        assert_eq!(f.roots().len(), 2);
        let i_a = f.index_of(region(0, 9)).unwrap();
        let i_b1 = f.index_of(region(1, 4)).unwrap();
        let i_c = f.index_of(region(2, 3)).unwrap();
        let i_b2 = f.index_of(region(6, 8)).unwrap();
        assert_eq!(f.parent(i_b1), Some(i_a));
        assert_eq!(f.parent(i_c), Some(i_b1));
        assert_eq!(f.parent(i_b2), Some(i_a));
        assert_eq!(f.children(i_a), &[i_b1, i_b2]);
        assert_eq!(f.depth(i_c), 3);
        assert_eq!(f.depth(i_a), 1);
    }

    #[test]
    fn deletion_preserves_validity_and_word_index() {
        let inst = InstanceBuilder::new(schema())
            .add("A", region(0, 9))
            .add("B", region(1, 4))
            .occurrence("x", 2, 1)
            .build_valid();
        let doomed = RegionSet::singleton(region(1, 4));
        let smaller = inst.without_regions(&doomed);
        assert_eq!(smaller.len(), 1);
        assert!(smaller.contains(region(0, 9)));
        assert!(!smaller.contains(region(1, 4)));
        assert!(crate::word::WordIndex::matches(
            smaller.word_index(),
            region(0, 9),
            "x"
        ));
    }

    #[test]
    fn restriction_keeps_only_given_regions() {
        let inst = InstanceBuilder::new(schema())
            .add("A", region(0, 9))
            .add("B", region(1, 4))
            .add("C", region(6, 7))
            .build_valid();
        let kept: RegionSet = [region(0, 9), region(6, 7)].into_iter().collect();
        let small = inst.restricted_to(&kept);
        assert_eq!(small.len(), 2);
        assert!(small.regions_of_name("B").is_empty());
    }
}
