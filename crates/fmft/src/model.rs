//! FMFT models (Section 3) as labeled ordered forests.
//!
//! A model `t = ({0,1}*, ⊃, <, Q_1, …, Q_{n+k})` of the monadic first-order
//! theory of finite binary trees is, for our purposes, exactly an ordered
//! forest whose nodes carry one region name (`Q_1..Q_n` are disjoint and
//! cover the nodes) and a subset of pattern predicates (`Q_{n+1}..Q_{n+k}`).
//! The paper's Definition 3.2 makes this representation precise:
//!
//! * `u` direct prefix of `v` ⇔ `region(u)` directly includes `region(v)`
//!   (forest parenthood);
//! * `u` lexicographically before `v` (and not its prefix) ⇔
//!   `region(u) < region(v)` (forest order);
//! * `u ∈ Q_i` ⇔ `region(u) ∈ R_i`; `u ∈ Q_{n+j}` ⇔ `W(region(u), p_j)`.
//!
//! [`Model`] therefore stores a forest plus per-node labels, with pre/post
//! numbering so that the two relations used by restricted formulas —
//! *proper ancestor* (`⊃`) and *strictly precedes* (`<`) — are O(1).

use tr_core::{Instance, NameId, Pos, Region, Schema, WordIndex};

/// A node of a [`Model`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelNode {
    /// The region name predicate this node satisfies (exactly one).
    pub name: NameId,
    /// Indices (into [`Model::patterns`]) of the pattern predicates this
    /// node satisfies.
    pub patterns: Vec<usize>,
    /// Children, in order.
    pub children: Vec<usize>,
    /// Parent, if any.
    pub parent: Option<usize>,
    pre: u32,
    last: u32,
}

/// An FMFT model: an ordered forest with name and pattern labels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Model {
    schema: Schema,
    patterns: Vec<String>,
    nodes: Vec<ModelNode>,
    roots: Vec<usize>,
}

impl Model {
    /// Builds a model from parent links (`None` = root, parents must come
    /// before children in index order), names, and pattern sets. Children
    /// order is index order.
    pub fn from_parents(
        schema: Schema,
        patterns: Vec<String>,
        parents: &[Option<usize>],
        names: &[NameId],
        pattern_sets: &[Vec<usize>],
    ) -> Model {
        assert_eq!(parents.len(), names.len());
        assert_eq!(parents.len(), pattern_sets.len());
        let n = parents.len();
        let mut nodes: Vec<ModelNode> = (0..n)
            .map(|i| {
                assert!(names[i].index() < schema.len(), "name out of schema");
                for &p in &pattern_sets[i] {
                    assert!(p < patterns.len(), "pattern index out of range");
                }
                ModelNode {
                    name: names[i],
                    patterns: pattern_sets[i].clone(),
                    children: Vec::new(),
                    parent: parents[i],
                    pre: 0,
                    last: 0,
                }
            })
            .collect();
        let mut roots = Vec::new();
        for (i, parent) in parents.iter().enumerate() {
            match *parent {
                Some(p) => {
                    assert!(p < i, "parents must precede children");
                    nodes[p].children.push(i);
                }
                None => roots.push(i),
            }
        }
        let mut m = Model {
            schema,
            patterns,
            nodes,
            roots,
        };
        m.renumber();
        m
    }

    fn renumber(&mut self) {
        let mut counter = 0u32;
        let roots = self.roots.clone();
        for r in roots {
            self.number(r, &mut counter);
        }
    }

    fn number(&mut self, i: usize, counter: &mut u32) {
        self.nodes[i].pre = *counter;
        *counter += 1;
        let children = self.nodes[i].children.clone();
        for c in children {
            self.number(c, counter);
        }
        self.nodes[i].last = *counter - 1;
    }

    /// The schema of name predicates.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The pattern vocabulary `P`.
    pub fn patterns(&self) -> &[String] {
        &self.patterns
    }

    /// Number of nodes (words in `t`).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the model has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The nodes.
    pub fn nodes(&self) -> &[ModelNode] {
        &self.nodes
    }

    /// The root indices.
    pub fn roots(&self) -> &[usize] {
        &self.roots
    }

    /// `u ⊃ v` in the model: `u` is a proper ancestor of `v`.
    #[inline]
    pub fn ancestor(&self, u: usize, v: usize) -> bool {
        let (a, b) = (&self.nodes[u], &self.nodes[v]);
        a.pre < b.pre && b.pre <= a.last
    }

    /// `u < v` in the region sense: `u`'s subtree lies entirely before `v`
    /// (Definition 3.2 (2): lexicographic order restricted to non-prefix
    /// pairs).
    #[inline]
    pub fn strictly_precedes(&self, u: usize, v: usize) -> bool {
        self.nodes[u].last < self.nodes[v].pre
    }

    /// `u ∈ Q` for a name predicate.
    #[inline]
    pub fn has_name(&self, u: usize, name: NameId) -> bool {
        self.nodes[u].name == name
    }

    /// `u ∈ Q_{n+j}` for a pattern predicate.
    #[inline]
    pub fn has_pattern(&self, u: usize, pat: usize) -> bool {
        self.nodes[u].patterns.contains(&pat)
    }

    /// Nesting depth of the forest.
    pub fn depth(&self) -> usize {
        fn go(m: &Model, i: usize) -> usize {
            1 + m.nodes[i]
                .children
                .iter()
                .map(|&c| go(m, c))
                .max()
                .unwrap_or(0)
        }
        self.roots.iter().map(|&r| go(self, r)).max().unwrap_or(0)
    }

    /// Builds the model representing an instance w.r.t. a pattern set
    /// (Definition 3.2, instance → model direction).
    pub fn from_instance<W: WordIndex>(inst: &Instance<W>, patterns: &[&str]) -> Model {
        let forest = inst.forest();
        let n = forest.len();
        let mut parents = Vec::with_capacity(n);
        let mut names = Vec::with_capacity(n);
        let mut pattern_sets = Vec::with_capacity(n);
        for (i, r, name) in forest.iter() {
            parents.push(forest.parent(i));
            names.push(name);
            pattern_sets.push(
                patterns
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| inst.word_index().matches(r, p))
                    .map(|(j, _)| j)
                    .collect(),
            );
        }
        // The forest is ordered by (left asc, right desc), so parents precede
        // children and siblings are in text order — exactly what
        // `from_parents` expects.
        Model::from_parents(
            inst.schema().clone(),
            patterns.iter().map(|s| s.to_string()).collect(),
            &parents,
            &names,
            &pattern_sets,
        )
    }

    /// Realizes the model as a region instance over an
    /// [`tr_core::ExplicitWordIndex`] (Definition 3.2, model → instance
    /// direction). Every model with disjoint name predicates — which this
    /// representation enforces by construction — represents an instance.
    pub fn to_instance(&self) -> Instance<tr_core::ExplicitWordIndex> {
        // Lay out like the generators: every node reserves one position on
        // each side of its children.
        fn width(m: &Model, i: usize) -> u64 {
            2 + m.nodes[i]
                .children
                .iter()
                .map(|&c| width(m, c))
                .sum::<u64>()
        }
        fn emit(
            m: &Model,
            i: usize,
            start: u64,
            sets: &mut [Vec<Region>],
            word: &mut tr_core::ExplicitWordIndex,
        ) -> u64 {
            let w = width(m, i);
            let (left, right) = (start as Pos, (start + w - 1) as Pos);
            let region = Region::new(left, right);
            sets[m.nodes[i].name.index()].push(region);
            for &p in &m.nodes[i].patterns {
                word.set(region, &m.patterns[p]);
            }
            let mut cursor = start + 1;
            for &c in &m.nodes[i].children {
                cursor = emit(m, c, cursor, sets, word) + 1;
            }
            start + w - 1
        }
        let mut sets = vec![Vec::new(); self.schema.len()];
        let mut word = tr_core::ExplicitWordIndex::new();
        let mut pos = 0u64;
        for &r in &self.roots {
            pos = emit(self, r, pos, &mut sets, &mut word) + 1;
        }
        let sets = sets
            .into_iter()
            .map(tr_core::RegionSet::from_regions)
            .collect();
        Instance::build(self.schema.clone(), sets, word).expect("forest layout is hierarchical")
    }

    /// The region assigned to node `u` by [`Model::to_instance`]'s layout.
    pub fn region_of(&self, u: usize) -> Region {
        // Recompute the layout positions for this node: left = pre-order
        // position shifted by ancestors; simpler to recompute from scratch.
        fn width(m: &Model, i: usize) -> u64 {
            2 + m.nodes[i]
                .children
                .iter()
                .map(|&c| width(m, c))
                .sum::<u64>()
        }
        fn find(m: &Model, i: usize, start: u64, target: usize) -> Result<Region, u64> {
            let w = width(m, i);
            if i == target {
                return Ok(Region::new(start as Pos, (start + w - 1) as Pos));
            }
            let mut cursor = start + 1;
            for &c in &m.nodes[i].children {
                match find(m, c, cursor, target) {
                    Ok(r) => return Ok(r),
                    Err(next) => cursor = next + 1,
                }
            }
            Err(start + w - 1)
        }
        let mut pos = 0u64;
        for &r in &self.roots {
            match find(self, r, pos, u) {
                Ok(region) => return region,
                Err(next) => pos = next + 1,
            }
        }
        unreachable!("node {u} not in model")
    }
}

/// Convenience: build an `InstanceBuilder`-style model literal for tests:
/// `(parent_or_none, "Name", &["pat", …])` triples.
pub fn model_literal(
    schema: Schema,
    patterns: &[&str],
    nodes: &[(Option<usize>, &str, &[usize])],
) -> Model {
    let parents: Vec<Option<usize>> = nodes.iter().map(|&(p, _, _)| p).collect();
    let names: Vec<NameId> = nodes.iter().map(|&(_, n, _)| schema.expect_id(n)).collect();
    let pats: Vec<Vec<usize>> = nodes.iter().map(|&(_, _, ps)| ps.to_vec()).collect();
    Model::from_parents(
        schema,
        patterns.iter().map(|s| s.to_string()).collect(),
        &parents,
        &names,
        &pats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use tr_core::{region, InstanceBuilder};

    fn schema() -> Schema {
        Schema::new(["A", "B"])
    }

    fn sample() -> Model {
        // A
        // ├── B {x}
        // │   └── A
        // └── B
        // A (second root)
        model_literal(
            schema(),
            &["x"],
            &[
                (None, "A", &[]),
                (Some(0), "B", &[0]),
                (Some(1), "A", &[]),
                (Some(0), "B", &[]),
                (None, "A", &[]),
            ],
        )
    }

    #[test]
    fn relations() {
        let m = sample();
        assert!(m.ancestor(0, 1));
        assert!(m.ancestor(0, 2));
        assert!(m.ancestor(1, 2));
        assert!(!m.ancestor(2, 1));
        assert!(!m.ancestor(0, 4));
        assert!(m.strictly_precedes(1, 3), "first B subtree before second B");
        assert!(
            !m.strictly_precedes(0, 1),
            "ancestor does not precede descendant"
        );
        assert!(m.strictly_precedes(0, 4));
        assert!(m.strictly_precedes(2, 3));
    }

    #[test]
    fn labels() {
        let m = sample();
        let s = m.schema().clone();
        assert!(m.has_name(0, s.expect_id("A")));
        assert!(m.has_name(1, s.expect_id("B")));
        assert!(m.has_pattern(1, 0));
        assert!(!m.has_pattern(0, 0));
        assert_eq!(m.depth(), 3);
        assert_eq!(m.len(), 5);
    }

    #[test]
    fn instance_round_trip_preserves_structure() {
        let m = sample();
        let inst = m.to_instance();
        assert_eq!(inst.len(), 5);
        let m2 = Model::from_instance(&inst, &["x"]);
        assert_eq!(m, m2, "model → instance → model is the identity");
    }

    #[test]
    fn from_instance_matches_hand_built() {
        let inst = InstanceBuilder::new(schema())
            .add("A", region(0, 9))
            .add("B", region(1, 4))
            .occurrence("x", 2, 1)
            .build_valid();
        let m = Model::from_instance(&inst, &["x"]);
        assert_eq!(m.len(), 2);
        assert!(m.ancestor(0, 1));
        assert!(m.has_pattern(1, 0), "the occurrence is inside B");
        assert!(
            m.has_pattern(0, 0),
            "…and inside A (match-point W is monotone)"
        );
    }

    #[test]
    fn region_of_matches_layout() {
        let m = sample();
        let inst = m.to_instance();
        for u in 0..m.len() {
            assert!(inst.contains(m.region_of(u)), "node {u}");
            assert_eq!(inst.name_of(m.region_of(u)), Some(m.nodes()[u].name));
        }
    }

    #[test]
    fn empty_model() {
        let m = model_literal(schema(), &[], &[]);
        assert!(m.is_empty());
        assert_eq!(m.depth(), 0);
        assert!(m.to_instance().is_empty());
    }
}
