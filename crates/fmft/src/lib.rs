//! # tr-fmft — the monadic tree theory side of the paper
//!
//! Section 3 of the paper relates the region algebra to the first-order
//! monadic theory of finite binary trees (FMFT): algebra expressions and
//! *restricted formulas* express the same region queries (Proposition
//! 3.3), which makes emptiness — and hence equivalence and optimization —
//! decidable (Theorems 3.4/3.6) though Co-NP-hard (Theorem 3.5).
//!
//! This crate implements all of it executably:
//!
//! * [`Model`] — FMFT models as labeled ordered forests, with the
//!   instance ⇄ model correspondence of Definition 3.2;
//! * [`Restricted`] — restricted formulas and their semantics;
//! * [`expr_to_formula`] / [`formula_to_expr`] — Proposition 3.3;
//! * [`EmptinessChecker`] — bounded-model emptiness and equivalence,
//!   optionally w.r.t. a RIG;
//! * [`optimize()`] — the paper's cost-based optimization scheme;
//! * [`cnf`] — the 3-CNF reduction behind Theorem 3.5, plus a DPLL solver
//!   for cross-checking.

#![warn(missing_docs)]

pub mod cnf;
pub mod emptiness;
pub mod formula;
pub mod model;
pub mod optimize;
pub mod translate;

pub use cnf::{assignment_instance, cnf_to_expr, random_3cnf, reduction_schema, Cnf, Lit};
pub use emptiness::{Bounds, EmptinessChecker};
pub use formula::{Pred, Rel, Restricted};
pub use model::{model_literal, Model, ModelNode};
pub use optimize::{optimize, prunings};
pub use translate::{eval_expr_on_model, expr_to_formula, formula_to_expr, mask_to_regions};
