//! Restricted FMFT formulas (Definition 3.1) and their semantics on
//! models.
//!
//! A restricted formula has one free variable and is built from atomic
//! predicates `Q(x)` using `∨`, `∧`, `∧¬`, and the guarded existential
//! forms `(∃y) φ₁(x) ∧ φ₂(y) ∧ x ∘ y` / `(∃y) φ₁(x) ∧ φ₂(y) ∧ y ∘ x`
//! with `∘ ∈ {⊃, <}`.

use crate::model::Model;
use std::fmt;
use tr_core::NameId;

/// An atomic monadic predicate: a region name `Q_i` or a pattern `Q_{n+j}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pred {
    /// One of the region name predicates `Q_1..Q_n`.
    Name(NameId),
    /// One of the pattern predicates `Q_{n+1}..Q_{n+k}` (index into the
    /// model's pattern vocabulary).
    Pattern(usize),
}

/// The two binary relations available to restricted formulas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rel {
    /// `⊃` — proper prefix order (proper ancestor in the forest view).
    Prefix,
    /// `<` — order (strict precedence on the region side, Definition 3.2).
    Less,
}

/// A restricted FMFT formula with free variable `x`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Restricted {
    /// `Q(x)`.
    Pred(Pred),
    /// `φ₁(x) ∨ φ₂(x)`.
    Or(Box<Restricted>, Box<Restricted>),
    /// `φ₁(x) ∧ φ₂(x)`.
    And(Box<Restricted>, Box<Restricted>),
    /// `φ₁(x) ∧ ¬φ₂(x)`.
    AndNot(Box<Restricted>, Box<Restricted>),
    /// `(∃y) φ₁(x) ∧ φ₂(y) ∧ x ∘ y` (or `y ∘ x` when `flipped`).
    Exists {
        /// The relation `∘`.
        rel: Rel,
        /// False: `x ∘ y`; true: `y ∘ x`.
        flipped: bool,
        /// `φ₁`, over the free variable `x`.
        outer: Box<Restricted>,
        /// `φ₂`, over the bound variable `y`.
        inner: Box<Restricted>,
    },
}

impl Restricted {
    /// `φ₁ ∨ φ₂`.
    pub fn or(self, rhs: Restricted) -> Restricted {
        Restricted::Or(Box::new(self), Box::new(rhs))
    }

    /// `φ₁ ∧ φ₂`.
    pub fn and(self, rhs: Restricted) -> Restricted {
        Restricted::And(Box::new(self), Box::new(rhs))
    }

    /// `φ₁ ∧ ¬φ₂`.
    pub fn and_not(self, rhs: Restricted) -> Restricted {
        Restricted::AndNot(Box::new(self), Box::new(rhs))
    }

    /// `(∃y) self(x) ∧ inner(y) ∧ x ∘ y`.
    pub fn exists(self, rel: Rel, inner: Restricted) -> Restricted {
        Restricted::Exists {
            rel,
            flipped: false,
            outer: Box::new(self),
            inner: Box::new(inner),
        }
    }

    /// `(∃y) self(x) ∧ inner(y) ∧ y ∘ x`.
    pub fn exists_flipped(self, rel: Rel, inner: Restricted) -> Restricted {
        Restricted::Exists {
            rel,
            flipped: true,
            outer: Box::new(self),
            inner: Box::new(inner),
        }
    }

    /// Evaluates `φ(t)`: the set of nodes (as a boolean mask, indexed by
    /// node id) satisfying the formula.
    pub fn eval(&self, t: &Model) -> Vec<bool> {
        match self {
            Restricted::Pred(p) => (0..t.len())
                .map(|u| match *p {
                    Pred::Name(n) => t.has_name(u, n),
                    Pred::Pattern(j) => t.has_pattern(u, j),
                })
                .collect(),
            Restricted::Or(a, b) => zip_with(a.eval(t), b.eval(t), |x, y| x || y),
            Restricted::And(a, b) => zip_with(a.eval(t), b.eval(t), |x, y| x && y),
            Restricted::AndNot(a, b) => zip_with(a.eval(t), b.eval(t), |x, y| x && !y),
            Restricted::Exists {
                rel,
                flipped,
                outer,
                inner,
            } => {
                let xs = outer.eval(t);
                let ys = inner.eval(t);
                (0..t.len())
                    .map(|u| {
                        xs[u]
                            && (0..t.len()).any(|v| {
                                ys[v]
                                    && match (rel, flipped) {
                                        (Rel::Prefix, false) => t.ancestor(u, v),
                                        (Rel::Prefix, true) => t.ancestor(v, u),
                                        (Rel::Less, false) => t.strictly_precedes(u, v),
                                        (Rel::Less, true) => t.strictly_precedes(v, u),
                                    }
                            })
                    })
                    .collect()
            }
        }
    }

    /// The number of connectives/quantifiers (a size measure mirroring
    /// `Expr::num_ops`).
    pub fn size(&self) -> usize {
        match self {
            Restricted::Pred(_) => 0,
            Restricted::Or(a, b) | Restricted::And(a, b) | Restricted::AndNot(a, b) => {
                1 + a.size() + b.size()
            }
            Restricted::Exists { outer, inner, .. } => 1 + outer.size() + inner.size(),
        }
    }
}

impl fmt::Display for Restricted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn var(depth: usize) -> String {
            match depth {
                0 => "x".into(),
                1 => "y".into(),
                d => format!("y{d}"),
            }
        }
        fn go(phi: &Restricted, depth: usize, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            let v = var(depth);
            match phi {
                Restricted::Pred(Pred::Name(n)) => write!(f, "Q{}({v})", n.index()),
                Restricted::Pred(Pred::Pattern(j)) => write!(f, "P{j}({v})"),
                Restricted::Or(a, b) => {
                    write!(f, "(")?;
                    go(a, depth, f)?;
                    write!(f, " ∨ ")?;
                    go(b, depth, f)?;
                    write!(f, ")")
                }
                Restricted::And(a, b) => {
                    write!(f, "(")?;
                    go(a, depth, f)?;
                    write!(f, " ∧ ")?;
                    go(b, depth, f)?;
                    write!(f, ")")
                }
                Restricted::AndNot(a, b) => {
                    write!(f, "(")?;
                    go(a, depth, f)?;
                    write!(f, " ∧ ¬")?;
                    go(b, depth, f)?;
                    write!(f, ")")
                }
                Restricted::Exists {
                    rel,
                    flipped,
                    outer,
                    inner,
                } => {
                    let w = var(depth + 1);
                    let rel_s = match rel {
                        Rel::Prefix => "⊃",
                        Rel::Less => "<",
                    };
                    write!(f, "(∃{w})(")?;
                    go(outer, depth, f)?;
                    write!(f, " ∧ ")?;
                    go(inner, depth + 1, f)?;
                    if *flipped {
                        write!(f, " ∧ {w} {rel_s} {v})")
                    } else {
                        write!(f, " ∧ {v} {rel_s} {w})")
                    }
                }
            }
        }
        go(self, 0, f)
    }
}

fn zip_with(a: Vec<bool>, b: Vec<bool>, f: impl Fn(bool, bool) -> bool) -> Vec<bool> {
    a.into_iter().zip(b).map(|(x, y)| f(x, y)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::model_literal;
    use tr_core::Schema;

    fn schema() -> Schema {
        Schema::new(["A", "B"])
    }

    fn name(s: &Schema, n: &str) -> Restricted {
        Restricted::Pred(Pred::Name(s.expect_id(n)))
    }

    #[test]
    fn atomic_and_boolean() {
        let s = schema();
        let m = model_literal(s.clone(), &["x"], &[(None, "A", &[0]), (Some(0), "B", &[])]);
        assert_eq!(name(&s, "A").eval(&m), vec![true, false]);
        assert_eq!(name(&s, "A").or(name(&s, "B")).eval(&m), vec![true, true]);
        assert_eq!(
            name(&s, "A").and(name(&s, "B")).eval(&m),
            vec![false, false]
        );
        assert_eq!(
            name(&s, "A")
                .and_not(Restricted::Pred(Pred::Pattern(0)))
                .eval(&m),
            vec![false, false]
        );
        assert_eq!(
            name(&s, "B")
                .and_not(Restricted::Pred(Pred::Pattern(0)))
                .eval(&m),
            vec![false, true]
        );
    }

    #[test]
    fn guarded_exists() {
        let s = schema();
        // A ⊃ B ; another A after it.
        let m = model_literal(
            s.clone(),
            &[],
            &[(None, "A", &[]), (Some(0), "B", &[]), (None, "A", &[])],
        );
        // x is an A including a B.
        let phi = name(&s, "A").exists(Rel::Prefix, name(&s, "B"));
        assert_eq!(phi.eval(&m), vec![true, false, false]);
        // x is a B included in an A.
        let phi = name(&s, "B").exists_flipped(Rel::Prefix, name(&s, "A"));
        assert_eq!(phi.eval(&m), vec![false, true, false]);
        // x precedes some A.
        let phi = name(&s, "A")
            .or(name(&s, "B"))
            .exists(Rel::Less, name(&s, "A"));
        assert_eq!(phi.eval(&m), vec![true, true, false]);
        // x follows some B.
        let phi = name(&s, "A").exists_flipped(Rel::Less, name(&s, "B"));
        assert_eq!(phi.eval(&m), vec![false, false, true]);
    }

    #[test]
    fn display_is_readable() {
        let s = schema();
        let phi = name(&s, "A").exists(Rel::Prefix, name(&s, "B").and(name(&s, "A")));
        assert_eq!(phi.to_string(), "(∃y)(Q0(x) ∧ (Q1(y) ∧ Q0(y)) ∧ x ⊃ y)");
    }

    #[test]
    fn size_counts_connectives() {
        let s = schema();
        assert_eq!(name(&s, "A").size(), 0);
        assert_eq!(name(&s, "A").or(name(&s, "B")).size(), 1);
        assert_eq!(name(&s, "A").exists(Rel::Less, name(&s, "B")).size(), 1);
    }
}
