//! Theorem 3.5: emptiness testing in the region algebra is Co-NP-hard,
//! by reduction from 3-CNF unsatisfiability.
//!
//! The paper states the reduction exists without spelling it out; the
//! construction used here (documented in DESIGN.md) is:
//!
//! * region names `D, X_1, …, X_n, T`;
//! * a candidate region `d ∈ D` encodes the assignment
//!   `a(i) := d ∈ (D ⊃ (X_i ⊃ T))` — "some `X_i` witness inside `d`
//!   contains a `T`";
//! * literal `x_i` ↦ `D ⊃ (X_i ⊃ T)`; literal `¬x_i` ↦
//!   `D − (D ⊃ (X_i ⊃ T))` (set difference is genuine negation, so the
//!   two literal sets partition `D` and no consistency gadget is needed);
//! * clause ↦ union of its literal sets; `e_φ` ↦ `D ∩ ⋂_j clause_j`.
//!
//! `e_φ(I)` is nonempty for some instance iff φ is satisfiable, hence
//! emptiness is Co-NP-hard. The module also carries a small DPLL solver so
//! tests and experiment E4 can cross-check the reduction.

use tr_core::{region, Expr, Instance, InstanceBuilder, Schema};

/// A literal: variable index plus polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lit {
    /// Variable index, `0..num_vars`.
    pub var: usize,
    /// True for `x`, false for `¬x`.
    pub positive: bool,
}

impl Lit {
    /// Positive literal.
    pub fn pos(var: usize) -> Lit {
        Lit {
            var,
            positive: true,
        }
    }

    /// Negative literal.
    pub fn neg(var: usize) -> Lit {
        Lit {
            var,
            positive: false,
        }
    }
}

/// A CNF formula (clauses of up to three literals; the reduction works for
/// any clause width).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cnf {
    /// Number of variables.
    pub num_vars: usize,
    /// The clauses.
    pub clauses: Vec<Vec<Lit>>,
}

impl Cnf {
    /// Evaluates the formula under an assignment.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        assert_eq!(assignment.len(), self.num_vars);
        self.clauses
            .iter()
            .all(|c| c.iter().any(|l| assignment[l.var] == l.positive))
    }

    /// A satisfying assignment, by DPLL with unit propagation, or `None`.
    pub fn solve(&self) -> Option<Vec<bool>> {
        let mut assignment: Vec<Option<bool>> = vec![None; self.num_vars];
        if self.dpll(&mut assignment) {
            Some(assignment.into_iter().map(|v| v.unwrap_or(false)).collect())
        } else {
            None
        }
    }

    fn dpll(&self, assignment: &mut Vec<Option<bool>>) -> bool {
        // Unit propagation / conflict detection.
        loop {
            let mut propagated = false;
            for clause in &self.clauses {
                let mut unassigned = None;
                let mut n_unassigned = 0;
                let mut satisfied = false;
                for l in clause {
                    match assignment[l.var] {
                        Some(v) if v == l.positive => {
                            satisfied = true;
                            break;
                        }
                        Some(_) => {}
                        None => {
                            unassigned = Some(*l);
                            n_unassigned += 1;
                        }
                    }
                }
                if satisfied {
                    continue;
                }
                match (n_unassigned, unassigned) {
                    (0, _) => return false, // conflict
                    (1, Some(l)) => {
                        assignment[l.var] = Some(l.positive);
                        propagated = true;
                    }
                    _ => {}
                }
            }
            if !propagated {
                break;
            }
        }
        let Some(var) = assignment.iter().position(Option::is_none) else {
            return true; // all assigned, no conflict
        };
        for choice in [true, false] {
            let saved = assignment.clone();
            assignment[var] = Some(choice);
            if self.dpll(assignment) {
                return true;
            }
            *assignment = saved;
        }
        false
    }

    /// True iff the formula is satisfiable.
    pub fn satisfiable(&self) -> bool {
        self.solve().is_some()
    }
}

/// The schema of the reduction: `D, X_0, …, X_{n−1}, T`.
pub fn reduction_schema(num_vars: usize) -> Schema {
    let mut names = vec!["D".to_owned()];
    names.extend((0..num_vars).map(|i| format!("X{i}")));
    names.push("T".to_owned());
    Schema::new(names)
}

/// The expression `e_φ` of the reduction: empty on all instances iff `φ`
/// is unsatisfiable. Size is linear in the formula.
pub fn cnf_to_expr(cnf: &Cnf, schema: &Schema) -> Expr {
    let d = || Expr::name(schema.expect_id("D"));
    let t = || Expr::name(schema.expect_id("T"));
    let lit = |l: &Lit| {
        let x = Expr::name(schema.expect_id(&format!("X{}", l.var)));
        let truthy = d().including(x.including(t()));
        if l.positive {
            truthy
        } else {
            d().diff(truthy)
        }
    };
    let mut e = d();
    for clause in &cnf.clauses {
        assert!(
            !clause.is_empty(),
            "empty clauses make φ trivially unsatisfiable"
        );
        let mut lits = clause.iter();
        let mut ce = lit(lits.next().expect("non-empty"));
        for l in lits {
            ce = ce.union(lit(l));
        }
        e = e.intersect(ce);
    }
    e
}

/// The canonical instance encoding an assignment: a `D` region containing
/// one `X_i` per variable, with a `T` inside `X_i` iff `a(i)` is true.
pub fn assignment_instance(cnf: &Cnf, schema: &Schema, assignment: &[bool]) -> Instance {
    assert_eq!(assignment.len(), cnf.num_vars);
    let width_per_var = 4u32;
    let d_right = 1 + width_per_var * cnf.num_vars as u32;
    let mut b = InstanceBuilder::new(schema.clone()).add("D", region(0, d_right));
    for (i, &value) in assignment.iter().enumerate() {
        let left = 1 + width_per_var * i as u32;
        b = b.add(&format!("X{i}"), region(left, left + 3));
        if value {
            b = b.add("T", region(left + 1, left + 2));
        }
    }
    b.build_valid()
}

/// A pseudo-random 3-CNF with `num_vars` variables and `num_clauses`
/// clauses (the standard random 3-SAT model), for tests and experiment E4.
pub fn random_3cnf<R: rand::Rng>(rng: &mut R, num_vars: usize, num_clauses: usize) -> Cnf {
    assert!(num_vars >= 3);
    let clauses = (0..num_clauses)
        .map(|_| {
            let mut vars = Vec::with_capacity(3);
            while vars.len() < 3 {
                let v = rng.gen_range(0..num_vars);
                if !vars.contains(&v) {
                    vars.push(v);
                }
            }
            vars.into_iter()
                .map(|v| Lit {
                    var: v,
                    positive: rng.gen_bool(0.5),
                })
                .collect()
        })
        .collect();
    Cnf { num_vars, clauses }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emptiness::{Bounds, EmptinessChecker};
    use rand::prelude::*;
    use tr_core::eval;

    fn tiny_sat() -> Cnf {
        // (x0 ∨ x1 ∨ x2) ∧ (¬x0 ∨ x1 ∨ ¬x2)
        Cnf {
            num_vars: 3,
            clauses: vec![
                vec![Lit::pos(0), Lit::pos(1), Lit::pos(2)],
                vec![Lit::neg(0), Lit::pos(1), Lit::neg(2)],
            ],
        }
    }

    fn tiny_unsat() -> Cnf {
        // (x0) ∧ (¬x0) via padded 1-literal clauses.
        Cnf {
            num_vars: 3,
            clauses: vec![vec![Lit::pos(0)], vec![Lit::neg(0)]],
        }
    }

    #[test]
    fn dpll_agrees_with_brute_force() {
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..50 {
            let m = rng.gen_range(1..18);
            let cnf = random_3cnf(&mut rng, 5, m);
            let brute = (0u32..32).any(|mask| {
                let assignment: Vec<bool> = (0..5).map(|i| mask & (1 << i) != 0).collect();
                cnf.eval(&assignment)
            });
            assert_eq!(cnf.satisfiable(), brute, "{cnf:?}");
            if let Some(a) = cnf.solve() {
                assert!(cnf.eval(&a), "solver must return a *satisfying* assignment");
            }
        }
    }

    /// The heart of the reduction: the assignment instance makes `e_φ`
    /// nonempty exactly when the assignment satisfies φ.
    #[test]
    fn assignment_instances_mirror_evaluation() {
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..30 {
            let m = rng.gen_range(1..10);
            let cnf = random_3cnf(&mut rng, 4, m);
            let schema = reduction_schema(cnf.num_vars);
            let e = cnf_to_expr(&cnf, &schema);
            for mask in 0u32..16 {
                let assignment: Vec<bool> = (0..4).map(|i| mask & (1 << i) != 0).collect();
                let inst = assignment_instance(&cnf, &schema, &assignment);
                assert_eq!(
                    !eval(&e, &inst).is_empty(),
                    cnf.eval(&assignment),
                    "cnf {cnf:?} assignment {assignment:?}"
                );
            }
        }
    }

    /// Emptiness of `e_φ` (checked generically, within bounds that cover
    /// the canonical witnesses) coincides with unsatisfiability.
    #[test]
    fn emptiness_matches_satisfiability() {
        for (cnf, expect_sat) in [(tiny_sat(), true), (tiny_unsat(), false)] {
            let schema = reduction_schema(cnf.num_vars);
            let e = cnf_to_expr(&cnf, &schema);
            // A minimal witness is D ⊃ X_i ⊃ T (3 nodes, depth 3): negative
            // literals are satisfied by *absent* X regions, so a satisfying
            // assignment never needs more than its true variables
            // materialized. max_nodes = 4 keeps the UNSAT sweep fast.
            let bounds = Bounds {
                max_nodes: 4,
                max_depth: 3,
            };
            let checker = EmptinessChecker::new(schema, bounds);
            assert_eq!(checker.is_empty(&e), !expect_sat, "{cnf:?}");
            assert_eq!(cnf.satisfiable(), expect_sat);
        }
    }

    #[test]
    fn expression_size_is_linear() {
        let cnf = tiny_sat();
        let schema = reduction_schema(cnf.num_vars);
        let e = cnf_to_expr(&cnf, &schema);
        // Each positive literal costs 2 ops, negative 3, plus unions and
        // intersections; just pin the exact count to catch regressions.
        assert_eq!(e.num_ops(), 20);
    }
}
