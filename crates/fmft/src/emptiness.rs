//! Emptiness and equivalence testing (Theorems 3.4 and 3.6).
//!
//! The paper shows emptiness of an algebra expression over *all* instances
//! is decidable (via Rabin's theorem) but Co-NP-hard even for restricted
//! formulas (Theorem 3.5) — so any complete procedure is super-polynomial.
//! This module implements a bounded-model checker: it enumerates canonical
//! labeled forests up to a node budget and nesting depth and evaluates the
//! expression on each.
//!
//! ## Completeness within the bounds
//!
//! The nesting bound is principled: by the deletion theorem (4.1), if
//! `e(I) ≠ ∅` for some `I` then a witness with nesting at most `2·|e|`
//! survives (delete everything outside the theorem's set `S`). The node
//! budget is a heuristic cut-off: the reduction machinery (Section 4.2)
//! collapses isomorphic siblings, which bounds useful width, but the paper
//! does not state (and we do not claim) a tight closed-form node bound.
//! [`EmptinessChecker::is_empty`] is therefore *sound for non-emptiness*
//! (a witness is a real witness) and complete up to the configured budget;
//! widen [`Bounds`] to trade time for assurance. The defaults make every
//! equivalence asserted in this workspace's tests exact.

use crate::model::Model;
use crate::translate::eval_expr_on_model;
use tr_core::{Expr, NameId, Schema};
use tr_rig::Rig;

/// Search bounds for the bounded-model checker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bounds {
    /// Maximum number of nodes in candidate models.
    pub max_nodes: usize,
    /// Maximum nesting depth of candidate models.
    pub max_depth: usize,
}

impl Bounds {
    /// Bounds derived from an expression: depth `2·|e| + 2` (the deletion
    /// theorem's bound plus slack), nodes capped at `max_nodes`.
    pub fn for_expr(e: &Expr, max_nodes: usize) -> Bounds {
        Bounds {
            max_nodes,
            max_depth: 2 * e.num_ops() + 2,
        }
    }
}

/// A bounded-model emptiness/equivalence checker over a schema.
#[derive(Debug, Clone)]
pub struct EmptinessChecker {
    schema: Schema,
    rig: Option<Rig>,
    bounds: Bounds,
}

impl EmptinessChecker {
    /// A checker over all instances of `schema` (Theorem 3.4 setting).
    pub fn new(schema: Schema, bounds: Bounds) -> EmptinessChecker {
        EmptinessChecker {
            schema,
            rig: None,
            bounds,
        }
    }

    /// A checker over the instances satisfying `rig` (Theorem 3.6
    /// setting): enumeration only generates forests whose direct
    /// inclusions are RIG edges.
    pub fn with_rig(rig: Rig, bounds: Bounds) -> EmptinessChecker {
        EmptinessChecker {
            schema: rig.schema().clone(),
            rig: Some(rig),
            bounds,
        }
    }

    /// The configured bounds.
    pub fn bounds(&self) -> Bounds {
        self.bounds
    }

    /// Searches for a model on which `e` selects at least one node.
    pub fn find_witness(&self, e: &Expr) -> Option<Model> {
        let patterns: Vec<String> = e.patterns().iter().map(|s| s.to_string()).collect();
        let mut found = None;
        self.enumerate(&patterns, &mut |m| {
            let mask = eval_expr_on_model(e, m);
            if mask.iter().any(|&b| b) {
                found = Some(m.clone());
                true
            } else {
                false
            }
        });
        found
    }

    /// True if `e(I)` is empty for every instance within the bounds
    /// (see the module docs for the completeness discussion).
    pub fn is_empty(&self, e: &Expr) -> bool {
        self.find_witness(e).is_none()
    }

    /// Equivalence via Theorem 3.4's recipe: `e₁ ≡ e₂` iff
    /// `(e₁ − e₂) ∪ (e₂ − e₁)` is empty for all instances.
    pub fn equivalent(&self, e1: &Expr, e2: &Expr) -> bool {
        self.distinguishing_model(e1, e2).is_none()
    }

    /// A model on which `e₁` and `e₂` disagree, if one exists in bounds.
    pub fn distinguishing_model(&self, e1: &Expr, e2: &Expr) -> Option<Model> {
        let disagreement = e1
            .clone()
            .diff(e2.clone())
            .union(e2.clone().diff(e1.clone()));
        self.find_witness(&disagreement)
    }

    /// Number of models visited for `e`'s pattern set within the bounds
    /// (diagnostics for experiment E3: the search-space growth).
    pub fn count_models(&self, e: &Expr) -> u64 {
        let patterns: Vec<String> = e.patterns().iter().map(|s| s.to_string()).collect();
        let mut count = 0u64;
        self.enumerate(&patterns, &mut |_| {
            count += 1;
            false
        });
        count
    }

    /// Enumerates every labeled ordered forest within the bounds (each
    /// exactly once), calling `visit`; stops early when `visit` returns
    /// true. Returns whether it stopped early.
    ///
    /// Public so other query formalisms (e.g. the n-ary extension of
    /// Section 7 in `tr-nary`) can reuse the canonical model space for
    /// their own bounded emptiness/equivalence testing.
    pub fn for_each_model(
        &self,
        patterns: &[String],
        visit: &mut dyn FnMut(&Model) -> bool,
    ) -> bool {
        self.enumerate(patterns, visit)
    }

    fn enumerate(&self, patterns: &[String], visit: &mut dyn FnMut(&Model) -> bool) -> bool {
        if self.schema.is_empty() {
            return false;
        }
        for total in 1..=self.bounds.max_nodes {
            let mut gen = Generator {
                schema: &self.schema,
                rig: self.rig.as_ref(),
                patterns,
                parents: Vec::with_capacity(total),
                names: Vec::with_capacity(total),
                pats: Vec::with_capacity(total),
                visit,
            };
            let mut agenda = vec![Task {
                size: total,
                parent: None,
                depth: self.bounds.max_depth,
            }];
            if gen.run(&mut agenda) {
                return true;
            }
        }
        false
    }
}

/// A pending "emit a forest of `size` nodes under `parent` with `depth`
/// levels available" obligation.
#[derive(Clone, Copy)]
struct Task {
    size: usize,
    parent: Option<usize>,
    depth: usize,
}

struct Generator<'a> {
    schema: &'a Schema,
    rig: Option<&'a Rig>,
    patterns: &'a [String],
    parents: Vec<Option<usize>>,
    names: Vec<NameId>,
    pats: Vec<Vec<usize>>,
    visit: &'a mut dyn FnMut(&Model) -> bool,
}

impl Generator<'_> {
    /// Processes the agenda depth-first; when it drains, a complete model
    /// has been assembled. The agenda and node buffers are restored before
    /// returning, so callers can continue iterating.
    fn run(&mut self, agenda: &mut Vec<Task>) -> bool {
        let Some(task) = agenda.pop() else {
            let m = Model::from_parents(
                self.schema.clone(),
                self.patterns.to_vec(),
                &self.parents,
                &self.names,
                &self.pats,
            );
            return (self.visit)(&m);
        };
        let stop = if task.size == 0 {
            self.run(agenda)
        } else if task.depth == 0 {
            false // no room for any node at this level
        } else {
            self.place_first_tree(task, agenda)
        };
        agenda.push(task);
        stop
    }

    /// Splits `task` into "first tree of t nodes" × "sibling forest of
    /// size − t nodes" for every t and every labeling of the first root.
    fn place_first_tree(&mut self, task: Task, agenda: &mut Vec<Task>) -> bool {
        let labels: Vec<NameId> = match (self.rig, task.parent) {
            (Some(rig), Some(p)) => rig.successors(self.names[p]).collect(),
            _ => self.schema.ids().collect(),
        };
        let n_pattern_sets = 1usize << self.patterns.len();
        for t in 1..=task.size {
            for &name in &labels {
                for pat_mask in 0..n_pattern_sets {
                    let node = self.parents.len();
                    self.parents.push(task.parent);
                    self.names.push(name);
                    self.pats.push(
                        (0..self.patterns.len())
                            .filter(|j| pat_mask & (1 << j) != 0)
                            .collect(),
                    );
                    // LIFO: children are emitted before the siblings, so
                    // push siblings first.
                    agenda.push(Task {
                        size: task.size - t,
                        parent: task.parent,
                        depth: task.depth,
                    });
                    agenda.push(Task {
                        size: t - 1,
                        parent: Some(node),
                        depth: task.depth - 1,
                    });
                    let stop = self.run(agenda);
                    agenda.pop();
                    agenda.pop();
                    self.parents.pop();
                    self.names.pop();
                    self.pats.pop();
                    if stop {
                        return true;
                    }
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tr_core::{eval, Expr};

    fn schema() -> Schema {
        Schema::new(["A", "B"])
    }

    fn a() -> Expr {
        Expr::name(schema().expect_id("A"))
    }

    fn b() -> Expr {
        Expr::name(schema().expect_id("B"))
    }

    fn checker(max_nodes: usize, max_depth: usize) -> EmptinessChecker {
        EmptinessChecker::new(
            schema(),
            Bounds {
                max_nodes,
                max_depth,
            },
        )
    }

    #[test]
    fn satisfiable_expressions_have_witnesses() {
        let c = checker(4, 4);
        assert!(!c.is_empty(&a()));
        assert!(!c.is_empty(&a().including(b())));
        let w = c.find_witness(&a().including(b())).unwrap();
        assert_eq!(w.len(), 2, "the smallest witness is A ⊃ B");
        assert!(w.ancestor(0, 1));
        // The witness is a genuine instance witness too.
        let inst = w.to_instance();
        assert!(!eval(&a().including(b()), &inst).is_empty());
    }

    #[test]
    fn contradictions_are_empty() {
        let c = checker(4, 4);
        assert!(c.is_empty(&a().intersect(b())), "names are disjoint");
        assert!(c.is_empty(&a().diff(a())));
        // x includes itself is impossible: A ⊃ A requires two A regions —
        // not a contradiction.
        assert!(!c.is_empty(&a().including(a())));
        // A region both preceding and included in the same single B region
        // is impossible... but with two B regions it's satisfiable.
        assert!(!c.is_empty(&a().before(b()).intersect(a().included_in(b()))));
    }

    #[test]
    fn selection_needs_a_pattern_witness() {
        let c = checker(3, 3);
        assert!(!c.is_empty(&a().select("x")));
        // σ_x(A) − σ_x(A) is empty.
        assert!(c.is_empty(&a().select("x").diff(a().select("x"))));
        // σ_x(A) ∩ (A − σ_x(A)) is empty.
        assert!(c.is_empty(&a().select("x").intersect(a().diff(a().select("x")))));
    }

    #[test]
    fn equivalence_finds_counterexamples() {
        let c = checker(4, 4);
        // A ⊃ B vs A: differ on an instance with a lone A.
        assert!(!c.equivalent(&a().including(b()), &a()));
        let m = c.distinguishing_model(&a().including(b()), &a()).unwrap();
        assert_eq!(m.len(), 1);
        // Union is commutative.
        assert!(c.equivalent(&a().union(b()), &b().union(a())));
        // Difference is not.
        assert!(!c.equivalent(&a().diff(b()), &b().diff(a())));
        // Idempotence.
        assert!(c.equivalent(&a(), &a().union(a())));
        assert!(c.equivalent(&a(), &a().intersect(a())));
    }

    #[test]
    fn rig_restricted_equivalence() {
        // Figure-1-style: with RIG P → H → N, every N nested inside a P
        // has an H in between, so `N ⊂ H ⊂ P ≡ N ⊂ P` w.r.t. the RIG
        // (Theorem 3.6's optimization use-case) — but not over all
        // instances, where N can sit directly inside P.
        let s3 = Schema::new(["P", "H", "N"]);
        let rig = Rig::from_edges(s3.clone(), [("P", "H"), ("H", "N")]);
        let bounds = Bounds {
            max_nodes: 4,
            max_depth: 4,
        };
        let with_rig = EmptinessChecker::with_rig(rig, bounds);
        let unrestricted = EmptinessChecker::new(s3.clone(), bounds);
        let n = Expr::name(s3.expect_id("N"));
        let h = Expr::name(s3.expect_id("H"));
        let p = Expr::name(s3.expect_id("P"));
        let long = n.clone().included_in(h.included_in(p.clone()));
        let short = n.included_in(p);
        assert!(with_rig.equivalent(&long, &short));
        assert!(
            !unrestricted.equivalent(&long, &short),
            "N directly inside P distinguishes them"
        );
    }

    #[test]
    fn depth_bound_prunes() {
        // A ⊃ A ⊃ A needs depth 3.
        let e = a().including(a().including(a()));
        assert!(checker(5, 2).is_empty(&e));
        assert!(!checker(5, 3).is_empty(&e));
    }

    #[test]
    fn model_counts_grow_fast() {
        let c1 = checker(3, 3);
        let c2 = checker(5, 5);
        let n1 = c1.count_models(&a());
        let n2 = c2.count_models(&a());
        assert!(n1 > 0 && n2 > n1 * 10, "n1={n1} n2={n2}");
    }

    #[test]
    fn bounds_for_expr_track_size() {
        let e = a().including(b()).union(a());
        assert_eq!(Bounds::for_expr(&e, 6).max_depth, 2 * 2 + 2);
    }
}
