//! The algebra ⇄ restricted-formula translations of Proposition 3.3.
//!
//! Both directions follow the paper's constructive proof: region names map
//! to name predicates, the set operators to `∨`/`∧`/`∧¬`, the structural
//! semi-joins to the guarded existentials, and `σ_p` to a conjunction with
//! the pattern predicate. The tests verify the semantic statement of the
//! proposition: for every instance `I`, model `t` representing it, and
//! region `r`, `r ∈ e(I)` iff `node(r) ∈ φ(t)`.

use crate::formula::{Pred, Rel, Restricted};
use crate::model::Model;
use tr_core::{BinOp, Expr, RegionSet, Schema};

/// Translates a region algebra expression into an equivalent restricted
/// formula. `patterns` is the vocabulary `P` (must contain every pattern
/// in `e`; indices into it become pattern predicates).
pub fn expr_to_formula(e: &Expr, patterns: &[String]) -> Restricted {
    match e {
        Expr::Name(id) => Restricted::Pred(Pred::Name(*id)),
        Expr::Select(p, inner) => {
            let j = patterns
                .iter()
                .position(|q| q == p)
                .unwrap_or_else(|| panic!("pattern {p:?} missing from vocabulary"));
            expr_to_formula(inner, patterns).and(Restricted::Pred(Pred::Pattern(j)))
        }
        Expr::Bin(op, l, r) => {
            let phi1 = expr_to_formula(l, patterns);
            let phi2 = expr_to_formula(r, patterns);
            match op {
                BinOp::Union => phi1.or(phi2),
                BinOp::Intersect => phi1.and(phi2),
                BinOp::Diff => phi1.and_not(phi2),
                BinOp::Including => phi1.exists(Rel::Prefix, phi2),
                BinOp::IncludedIn => phi1.exists_flipped(Rel::Prefix, phi2),
                BinOp::Before => phi1.exists(Rel::Less, phi2),
                BinOp::After => phi1.exists_flipped(Rel::Less, phi2),
            }
        }
    }
}

/// Translates a restricted formula into an equivalent region algebra
/// expression (the converse direction of Proposition 3.3).
///
/// A bare pattern predicate `Q_{n+j}(x)` denotes "any region matching
/// `p_j`", which the algebra expresses as `σ_{p_j}(R_1 ∪ … ∪ R_n)` —
/// hence the `schema` argument.
pub fn formula_to_expr(phi: &Restricted, schema: &Schema, patterns: &[String]) -> Expr {
    match phi {
        Restricted::Pred(Pred::Name(id)) => Expr::Name(*id),
        Restricted::Pred(Pred::Pattern(j)) => all_names(schema).select(patterns[*j].clone()),
        Restricted::Or(a, b) => {
            formula_to_expr(a, schema, patterns).union(formula_to_expr(b, schema, patterns))
        }
        Restricted::And(a, b) => {
            formula_to_expr(a, schema, patterns).intersect(formula_to_expr(b, schema, patterns))
        }
        Restricted::AndNot(a, b) => {
            formula_to_expr(a, schema, patterns).diff(formula_to_expr(b, schema, patterns))
        }
        Restricted::Exists {
            rel,
            flipped,
            outer,
            inner,
        } => {
            let l = formula_to_expr(outer, schema, patterns);
            let r = formula_to_expr(inner, schema, patterns);
            let op = match (rel, flipped) {
                (Rel::Prefix, false) => BinOp::Including,
                (Rel::Prefix, true) => BinOp::IncludedIn,
                (Rel::Less, false) => BinOp::Before,
                (Rel::Less, true) => BinOp::After,
            };
            Expr::bin(op, l, r)
        }
    }
}

/// `R_1 ∪ … ∪ R_n`.
fn all_names(schema: &Schema) -> Expr {
    let mut ids = schema.ids();
    let first = Expr::name(ids.next().expect("schema must be non-empty"));
    ids.fold(first, |acc, id| acc.union(Expr::name(id)))
}

/// Evaluates a region algebra expression directly on a model, through the
/// translation. Returns the node mask.
pub fn eval_expr_on_model(e: &Expr, t: &Model) -> Vec<bool> {
    let patterns: Vec<String> = t.patterns().to_vec();
    expr_to_formula(e, &patterns).eval(t)
}

/// The set of regions a node mask denotes under the model's layout
/// ([`Model::to_instance`]'s coordinates).
pub fn mask_to_regions(t: &Model, mask: &[bool]) -> RegionSet {
    mask.iter()
        .enumerate()
        .filter(|(_, &b)| b)
        .map(|(u, _)| t.region_of(u))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use tr_core::{eval, Instance, NameId};

    fn random_expr<R: Rng>(rng: &mut R, schema: &Schema, patterns: &[&str], ops: usize) -> Expr {
        if ops == 0 {
            return Expr::name(NameId::from_index(rng.gen_range(0..schema.len())));
        }
        if !patterns.is_empty() && rng.gen_bool(0.2) {
            let p = patterns[rng.gen_range(0..patterns.len())];
            return random_expr(rng, schema, patterns, ops - 1).select(p);
        }
        let split = rng.gen_range(0..ops);
        let l = random_expr(rng, schema, patterns, split);
        let r = random_expr(rng, schema, patterns, ops - 1 - split);
        let op = BinOp::ALL[rng.gen_range(0..BinOp::ALL.len())];
        Expr::bin(op, l, r)
    }

    fn random_instance<R: Rng>(rng: &mut R, schema: &Schema) -> Instance {
        // Reuse the generator idea locally to avoid a dependency cycle with
        // tr-markup: a small random forest.
        let mut b = tr_core::InstanceBuilder::new(schema.clone());
        let mut pos = 0u32;
        for _ in 0..rng.gen_range(1..6) {
            let w = rng.gen_range(2..12);
            let name = if rng.gen_bool(0.5) { "A" } else { "B" };
            b = b.add(name, tr_core::region(pos, pos + w));
            if w >= 4 {
                let name2 = if rng.gen_bool(0.5) { "A" } else { "B" };
                b = b.add(name2, tr_core::region(pos + 1, pos + w - 1));
                if rng.gen_bool(0.5) {
                    b = b.occurrence("x", pos + 2, 1);
                }
            }
            pos += w + 2;
        }
        b.build_valid()
    }

    /// Proposition 3.3, algebra → formula direction, checked semantically
    /// on random instances.
    #[test]
    fn translation_preserves_semantics() {
        let schema = Schema::new(["A", "B"]);
        let patterns = ["x"];
        let mut rng = StdRng::seed_from_u64(23);
        for trial in 0..200 {
            let ops = rng.gen_range(1..6);
            let e = random_expr(&mut rng, &schema, &patterns, ops);
            let inst = random_instance(&mut rng, &schema);
            let algebra = eval(&e, &inst);
            let t = Model::from_instance(&inst, &patterns);
            let mask = eval_expr_on_model(&e, &t);
            // Compare region-by-region through the forest correspondence.
            let forest = inst.forest();
            for (u, r, _) in forest.iter() {
                assert_eq!(
                    algebra.contains(r),
                    mask[u],
                    "trial {trial}: expr {e}, region {r}, instance {inst:?}"
                );
            }
        }
    }

    /// Round trip: formula → expr → formula preserves semantics on the
    /// models derived from random instances (the converse direction).
    #[test]
    fn converse_translation_round_trips() {
        let schema = Schema::new(["A", "B"]);
        let patterns: Vec<String> = vec!["x".into()];
        let mut rng = StdRng::seed_from_u64(29);
        for _ in 0..100 {
            let ops = rng.gen_range(1..5);
            let e = random_expr(&mut rng, &schema, &["x"], ops);
            let phi = expr_to_formula(&e, &patterns);
            let back = formula_to_expr(&phi, &schema, &patterns);
            let inst = random_instance(&mut rng, &schema);
            assert_eq!(
                eval(&e, &inst),
                eval(&back, &inst),
                "expr {e} → {phi} → {back}"
            );
        }
    }

    /// A bare pattern predicate becomes a selection over the union of all
    /// names.
    #[test]
    fn pattern_predicate_selects_all_names() {
        let schema = Schema::new(["A", "B"]);
        let patterns: Vec<String> = vec!["x".into()];
        let phi = Restricted::Pred(Pred::Pattern(0));
        let e = formula_to_expr(&phi, &schema, &patterns);
        assert_eq!(e.to_string(), "σ[\"x\"](R0 ∪ R1)");
    }

    #[test]
    fn mask_round_trip_through_layout() {
        let schema = Schema::new(["A", "B"]);
        let inst = tr_core::InstanceBuilder::new(schema.clone())
            .add("A", tr_core::region(0, 9))
            .add("B", tr_core::region(1, 4))
            .build_valid();
        let t = Model::from_instance(&inst, &[]);
        let e = Expr::name(schema.expect_id("A"));
        let mask = eval_expr_on_model(&e, &t);
        let regions = mask_to_regions(&t, &mask);
        assert_eq!(regions.len(), 1);
        // The layout instance must agree with the mask too.
        let layout = t.to_instance();
        assert_eq!(eval(&e, &layout), regions);
    }
}
