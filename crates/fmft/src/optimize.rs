//! Cost-based query optimization via emptiness testing (Section 3).
//!
//! The paper's scheme: with a price function where every operation adds
//! cost, optimizing `e` means searching the (finite) set of cheaper
//! expressions for one equivalent to `e`, deciding each equivalence by
//! emptiness of the symmetric difference. That search is expensive in
//! general (Theorem 3.5); this module implements the practical kernel —
//! candidates are *prunings* of `e` (sub-expressions promoted over their
//! parent operator), which is where real redundancy lives, and
//! equivalence is decided by the bounded checker, optionally w.r.t. a RIG
//! (Theorem 3.6).

use crate::emptiness::EmptinessChecker;
use std::collections::BTreeSet;
use tr_core::Expr;

/// All prunings of `e`: expressions obtained by replacing any binary node
/// with one of its operands, or any selection with its operand, applied
/// repeatedly. `e` itself is included. The set is finite and at most
/// exponential in `|e|`; for query-sized expressions it is small.
pub fn prunings(e: &Expr) -> Vec<Expr> {
    // Stringify for dedup: Expr is Hash but BTreeSet needs Ord; the textual
    // form is canonical enough (it round-trips structure exactly).
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let mut out = Vec::new();
    let mut stack = vec![e.clone()];
    while let Some(cur) = stack.pop() {
        if !seen.insert(cur.to_string()) {
            continue;
        }
        for child in one_step_prunings(&cur) {
            stack.push(child);
        }
        out.push(cur);
    }
    out
}

/// Prunings that remove exactly one operator somewhere in `e`.
fn one_step_prunings(e: &Expr) -> Vec<Expr> {
    let mut out = Vec::new();
    match e {
        Expr::Name(_) => {}
        Expr::Select(p, inner) => {
            out.push((**inner).clone());
            for sub in one_step_prunings(inner) {
                out.push(sub.select(p.clone()));
            }
        }
        Expr::Bin(op, l, r) => {
            out.push((**l).clone());
            out.push((**r).clone());
            for sub in one_step_prunings(l) {
                out.push(Expr::bin(*op, sub, (**r).clone()));
            }
            for sub in one_step_prunings(r) {
                out.push(Expr::bin(*op, (**l).clone(), sub));
            }
        }
    }
    out
}

/// The cheapest pruning of `e` equivalent to it under `checker`'s bounds
/// (and RIG, if the checker carries one). Ties break toward the first
/// found; the result is `e` itself when nothing cheaper is equivalent.
pub fn optimize(e: &Expr, checker: &EmptinessChecker) -> Expr {
    let mut candidates = prunings(e);
    candidates.sort_by_key(Expr::num_ops);
    for cand in candidates {
        if cand.num_ops() >= e.num_ops() {
            break;
        }
        if checker.equivalent(&cand, e) {
            return cand;
        }
    }
    e.clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emptiness::Bounds;
    use tr_core::{Expr, Schema};
    use tr_rig::Rig;

    fn schema() -> Schema {
        Schema::new(["A", "B"])
    }

    fn a() -> Expr {
        Expr::name(schema().expect_id("A"))
    }

    fn b() -> Expr {
        Expr::name(schema().expect_id("B"))
    }

    #[test]
    fn prunings_cover_all_single_removals() {
        let e = a().including(b()).union(a().select("x"));
        let ps = prunings(&e);
        let strings: Vec<String> = ps.iter().map(|p| p.to_string()).collect();
        assert!(strings.contains(&"R0".to_string()));
        assert!(strings.contains(&"R1".to_string()));
        assert!(strings.contains(&"R0 ⊃ R1".to_string()));
        assert!(strings.contains(&"σ[\"x\"](R0)".to_string()));
        assert!(strings.contains(&"(R0 ⊃ R1) ∪ R0".to_string()));
        assert!(strings.contains(&e.to_string()));
    }

    #[test]
    fn idempotent_union_is_pruned() {
        let checker = EmptinessChecker::new(
            schema(),
            Bounds {
                max_nodes: 4,
                max_depth: 4,
            },
        );
        let e = a().union(a());
        assert_eq!(optimize(&e, &checker), a());
    }

    #[test]
    fn useful_operators_survive() {
        let checker = EmptinessChecker::new(
            schema(),
            Bounds {
                max_nodes: 4,
                max_depth: 4,
            },
        );
        let e = a().including(b());
        assert_eq!(
            optimize(&e, &checker),
            e,
            "A ⊃ B is not equivalent to A or B"
        );
    }

    #[test]
    fn rig_enables_deeper_pruning() {
        // With RIG P → H → N, `N ⊂ H ⊂ P` prunes to `N ⊂ P` (2 ops → 1 op).
        let s3 = Schema::new(["P", "H", "N"]);
        let rig = Rig::from_edges(s3.clone(), [("P", "H"), ("H", "N")]);
        let n = Expr::name(s3.expect_id("N"));
        let h = Expr::name(s3.expect_id("H"));
        let p = Expr::name(s3.expect_id("P"));
        let long = n.clone().included_in(h.included_in(p.clone()));
        let bounds = Bounds {
            max_nodes: 4,
            max_depth: 4,
        };
        let with_rig = EmptinessChecker::with_rig(rig, bounds);
        let opt = optimize(&long, &with_rig);
        assert_eq!(opt, n.included_in(p));
        // Without the RIG the long chain is already minimal.
        let plain = EmptinessChecker::new(s3, bounds);
        assert_eq!(optimize(&long, &plain), long);
    }

    #[test]
    fn optimization_never_increases_cost() {
        let checker = EmptinessChecker::new(
            schema(),
            Bounds {
                max_nodes: 3,
                max_depth: 3,
            },
        );
        for e in [
            a().intersect(a()).union(b()),
            a().diff(b()).diff(b()),
            a().select("x").union(a().select("x")),
        ] {
            let opt = optimize(&e, &checker);
            assert!(opt.num_ops() <= e.num_ops());
            assert!(checker.equivalent(&opt, &e));
        }
    }
}
