//! The scatter-gather routing tier: one process fronting N backends.
//!
//! A [`Router`] speaks the same newline-delimited JSON protocol as
//! [`crate::server`], but owns no documents. At startup it connects to
//! every configured backend (see [`parse_backends_toml`]), asks each for
//! its catalog, and builds a routing table `doc → backends`. A corpus
//! too large for any single instance's admission cap
//! ([`crate::Catalog::open_capped`]) is served by splitting it across
//! backend corpus directories and pointing the router at all of them.
//!
//! Per query, the router is a [`tr_core::PartitionExec`] consumer in
//! spirit: it picks a fanout with [`tr_core::choose_fanout`] (the cost
//! model's `remote_fanout_ns` term keeps small documents on one wire
//! round-trip), carves the document's position space with
//! [`tr_core::seg::segment_bounds`], scatters `shard-query` requests —
//! each answering only result regions whose left endpoint falls in its
//! window — and merges the sorted shard replies with the zero-copy
//! [`RegionSet::concat`] path. Because the windows tile `[0, ∞)`, the
//! merged reply is **byte-identical** to a single-node evaluation; the
//! `router_oracle` integration test pins that across shard counts and
//! backend permutations.
//!
//! Failure semantics: a backend request that breaks the connection marks
//! the backend unhealthy and is retried **once** (the retry reconnects
//! with bounded exponential backoff plus jitter; `router.backend_reconnects`
//! counts those re-dial cycles). If the retry also fails the client gets a
//! structured [`ErrorCode::Degraded`] reply — never a hang — and the
//! router keeps serving documents on the surviving backends. A health
//! thread pings every backend on an interval so `stats` reports
//! per-backend health (and each backend's admission-queue depth) without
//! waiting for a query to trip over a dead one.
//!
//! The router answers `ping`, `list-docs` (merged), `stats`, `query`,
//! and `batch`. Mutating and session ops (`mutate`, `watch`,
//! `define-view`, `save`, …) are refused with `bad_request`: they need a
//! single authoritative generation, which is the backend's job.

use crate::client::{Client, ClientError};
use crate::protocol::{self, ErrorCode, Request, RequestBody};
use crate::server::{ConnWriter, Frame, FrameReader, READ_TICK};
use std::collections::BTreeMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};
use tr_core::seg::segment_bounds;
use tr_core::{choose_fanout, CostModel, RegionSet};
use tr_obs::Json;

/// One configured backend: a display name and a `host:port` address.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BackendSpec {
    /// Operator-chosen name, shown in `stats` and error messages.
    pub name: String,
    /// TCP address of a running tr-serve instance.
    pub addr: String,
}

/// Tuning knobs for [`Router::start`].
#[derive(Clone, Debug)]
pub struct RouterConfig {
    /// Maximum request frame size on router connections.
    pub max_frame_bytes: usize,
    /// How often the health thread pings each backend.
    pub health_interval: Duration,
    /// Read timeout on backend connections: a hung backend costs at most
    /// this long before the request degrades, never a hang.
    pub backend_timeout: Duration,
    /// Upper bound on shards per query, independent of backend count.
    pub max_fanout: usize,
    /// Cost model consulted by [`tr_core::choose_fanout`]; its
    /// `remote_fanout_ns` term keeps small documents on one round-trip.
    pub cost_model: CostModel,
}

impl Default for RouterConfig {
    fn default() -> RouterConfig {
        RouterConfig {
            max_frame_bytes: 1 << 20,
            health_interval: Duration::from_secs(1),
            backend_timeout: Duration::from_secs(5),
            max_fanout: 8,
            cost_model: CostModel::default(),
        }
    }
}

/// Reconnect backoff: first retry after [`RECONNECT_BASE`], doubling up
/// to [`RECONNECT_MAX`], each delay jittered to ±50%. Bounded at
/// [`RECONNECT_ATTEMPTS`] connection attempts per reconnect cycle so a
/// dead backend costs milliseconds, not minutes, before degrading.
const RECONNECT_ATTEMPTS: usize = 3;
const RECONNECT_BASE: Duration = Duration::from_millis(25);
const RECONNECT_MAX: Duration = Duration::from_millis(200);

/// Cached handles into the `tr_obs` registry.
struct RouterMetrics {
    queries: Arc<tr_obs::Counter>,
    forwarded: Arc<tr_obs::Counter>,
    scatter: Arc<tr_obs::Counter>,
    shard_requests: Arc<tr_obs::Counter>,
    degraded: Arc<tr_obs::Counter>,
    backend_reconnects: Arc<tr_obs::Counter>,
}

impl RouterMetrics {
    fn get() -> &'static RouterMetrics {
        static METRICS: OnceLock<RouterMetrics> = OnceLock::new();
        METRICS.get_or_init(|| RouterMetrics {
            queries: tr_obs::counter("router.queries"),
            forwarded: tr_obs::counter("router.forwarded"),
            scatter: tr_obs::counter("router.scatter"),
            shard_requests: tr_obs::counter("router.shard_requests"),
            degraded: tr_obs::counter("router.degraded"),
            backend_reconnects: tr_obs::counter("router.backend_reconnects"),
        })
    }
}

/// Parses the `backends.toml` routing file. The accepted grammar is the
/// TOML subset the file actually needs (no dependency on a TOML crate):
///
/// ```text
/// # comments and blank lines are ignored
/// [[backend]]
/// name = "alpha"
/// addr = "127.0.0.1:7879"
///
/// [[backend]]
/// name = "beta"
/// addr = "127.0.0.1:7880"
/// ```
///
/// Every block needs both keys; names must be unique.
pub fn parse_backends_toml(text: &str) -> Result<Vec<BackendSpec>, String> {
    fn finish(
        current: &mut Option<(Option<String>, Option<String>)>,
        specs: &mut Vec<BackendSpec>,
    ) -> Result<(), String> {
        if let Some((name, addr)) = current.take() {
            let name = name.ok_or("a [[backend]] block is missing \"name\"")?;
            let addr = addr.ok_or_else(|| format!("backend {name:?} is missing \"addr\""))?;
            if specs.iter().any(|s| s.name == name) {
                return Err(format!("duplicate backend name {name:?}"));
            }
            specs.push(BackendSpec { name, addr });
        }
        Ok(())
    }
    let mut specs = Vec::new();
    let mut current: Option<(Option<String>, Option<String>)> = None;
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if line == "[[backend]]" {
            finish(&mut current, &mut specs)?;
            current = Some((None, None));
            continue;
        }
        let lineno = idx + 1;
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!("line {lineno}: expected `key = \"value\"`"));
        };
        let value = value
            .trim()
            .strip_prefix('"')
            .and_then(|v| v.strip_suffix('"'))
            .ok_or_else(|| format!("line {lineno}: value must be double-quoted"))?;
        let Some((name_slot, addr_slot)) = current.as_mut() else {
            return Err(format!("line {lineno}: key outside a [[backend]] block"));
        };
        match key.trim() {
            "name" => *name_slot = Some(value.to_owned()),
            "addr" => *addr_slot = Some(value.to_owned()),
            other => return Err(format!("line {lineno}: unknown key {other:?}")),
        }
    }
    finish(&mut current, &mut specs)?;
    if specs.is_empty() {
        return Err("no [[backend]] blocks found".to_owned());
    }
    Ok(specs)
}

/// One backend's live state: at most one pooled connection (requests to
/// a backend serialize over it — the router's parallelism is across
/// backends, not per backend) plus a health flag the ping thread and the
/// request path both maintain.
struct Backend {
    spec: BackendSpec,
    conn: Mutex<Option<Client>>,
    healthy: AtomicBool,
    /// Distinguishes the startup connect from *re*-connects, so
    /// `router.backend_reconnects` counts only re-dial cycles after a
    /// connection was lost, not the initial fan-in.
    ever_connected: AtomicBool,
}

impl Backend {
    fn new(spec: BackendSpec) -> Backend {
        Backend {
            spec,
            conn: Mutex::new(None),
            healthy: AtomicBool::new(false),
            ever_connected: AtomicBool::new(false),
        }
    }

    /// Runs `f` over a live connection, establishing one (with bounded
    /// backoff) if none is pooled. A connection-level failure inside `f`
    /// drops the pooled connection and marks the backend unhealthy; the
    /// *caller* decides whether to retry — calling again reconnects.
    fn with_conn<T>(
        &self,
        cfg: &RouterConfig,
        f: impl FnOnce(&mut Client) -> Result<T, ClientError>,
    ) -> Result<T, ClientError> {
        let mut slot = self.conn.lock().unwrap_or_else(|p| p.into_inner());
        if slot.is_none() {
            *slot = Some(self.reconnect(cfg)?);
        }
        let client = slot.as_mut().expect("connection just ensured");
        match f(client) {
            Ok(v) => {
                self.healthy.store(true, Ordering::SeqCst);
                Ok(v)
            }
            Err(e) => {
                if matches!(e, ClientError::Io(_) | ClientError::Protocol(_)) {
                    *slot = None;
                    self.healthy.store(false, Ordering::SeqCst);
                }
                Err(e)
            }
        }
    }

    /// Dials the backend: up to [`RECONNECT_ATTEMPTS`] attempts, the
    /// first immediate, later ones spaced by exponential backoff with
    /// ±50% jitter (so a fleet of routers re-dialing a restarted backend
    /// does not stampede it on one schedule).
    fn reconnect(&self, cfg: &RouterConfig) -> Result<Client, ClientError> {
        if self.ever_connected.load(Ordering::SeqCst) {
            RouterMetrics::get().backend_reconnects.inc();
        }
        let mut seed = jitter_seed();
        let mut delay = RECONNECT_BASE;
        let mut last = None;
        for attempt in 0..RECONNECT_ATTEMPTS {
            if attempt > 0 {
                std::thread::sleep(jittered(delay, &mut seed));
                delay = (delay * 2).min(RECONNECT_MAX);
            }
            match Client::connect(self.spec.addr.as_str()) {
                Ok(client) => {
                    client.set_read_timeout(Some(cfg.backend_timeout)).ok();
                    self.ever_connected.store(true, Ordering::SeqCst);
                    return Ok(client);
                }
                Err(e) => last = Some(e),
            }
        }
        self.healthy.store(false, Ordering::SeqCst);
        Err(ClientError::Io(last.expect("at least one attempt ran")))
    }
}

fn jitter_seed() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x9e37_79b9_7f4a_7c15)
        | 1
}

/// xorshift64* step → a delay multiplied into [0.5, 1.5).
fn jittered(delay: Duration, seed: &mut u64) -> Duration {
    *seed ^= *seed << 13;
    *seed ^= *seed >> 7;
    *seed ^= *seed << 17;
    let unit = (seed.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 11) as f64 / (1u64 << 53) as f64;
    delay.mul_f64(0.5 + unit)
}

/// Where one document lives: its advertised size (for carving shard
/// windows) plus the backends listing it, in configuration order.
struct Route {
    bytes: u64,
    /// The startup `list-docs` summary, re-served by the router's own
    /// `list-docs` with a `backends` field appended.
    summary: Json,
    backends: Vec<usize>,
}

struct RouterShared {
    backends: Vec<Backend>,
    routes: BTreeMap<String, Route>,
    cfg: RouterConfig,
    shutdown: AtomicBool,
    conn_handles: Mutex<Vec<JoinHandle<()>>>,
    started: Instant,
}

/// A running routing tier. Dropping it shuts down gracefully.
pub struct Router {
    local: SocketAddr,
    shared: Arc<RouterShared>,
    accept: Option<JoinHandle<()>>,
    health: Option<JoinHandle<()>>,
}

impl Router {
    /// Connects to every backend, builds the routing table from their
    /// catalogs, binds `addr`, and starts serving. Backends that are
    /// unreachable at startup begin unhealthy and contribute no routes;
    /// if *none* is reachable the router refuses to start.
    pub fn start(
        specs: Vec<BackendSpec>,
        addr: impl ToSocketAddrs,
        cfg: RouterConfig,
    ) -> io::Result<Router> {
        if specs.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "router needs at least one backend",
            ));
        }
        let backends: Vec<Backend> = specs.into_iter().map(Backend::new).collect();
        let mut routes: BTreeMap<String, Route> = BTreeMap::new();
        let mut reachable = 0usize;
        for (i, backend) in backends.iter().enumerate() {
            let docs = backend.with_conn(&cfg, |c| c.list_docs());
            let Ok(reply) = docs else { continue };
            reachable += 1;
            for doc in reply.get("docs").and_then(Json::as_arr).unwrap_or_default() {
                let Some(name) = doc.get("name").and_then(Json::as_str) else {
                    continue;
                };
                let bytes = doc.get("bytes").and_then(Json::as_u64).unwrap_or(0);
                routes
                    .entry(name.to_owned())
                    .or_insert_with(|| Route {
                        bytes,
                        summary: doc.clone(),
                        backends: Vec::new(),
                    })
                    .backends
                    .push(i);
            }
        }
        if reachable == 0 {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                "no configured backend is reachable",
            ));
        }
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shared = Arc::new(RouterShared {
            backends,
            routes,
            cfg,
            shutdown: AtomicBool::new(false),
            conn_handles: Mutex::new(Vec::new()),
            started: Instant::now(),
        });
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("tr-route-accept".to_owned())
                .spawn(move || accept_loop(&shared, listener))?
        };
        let health = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("tr-route-health".to_owned())
                .spawn(move || health_loop(&shared))?
        };
        Ok(Router {
            local,
            shared,
            accept: Some(accept),
            health: Some(health),
        })
    }

    /// The bound address (for ephemeral-port routers).
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }

    /// The number of distinct documents in the routing table.
    pub fn num_docs(&self) -> usize {
        self.shared.routes.len()
    }

    /// Gracefully shuts down: stop accepting, join every thread.
    pub fn shutdown(mut self) {
        self.do_shutdown();
    }

    fn do_shutdown(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        let _ = TcpStream::connect(self.local);
        if let Some(h) = self.accept.take() {
            h.join().ok();
        }
        let conns: Vec<_> = {
            let mut handles = self
                .shared
                .conn_handles
                .lock()
                .unwrap_or_else(|p| p.into_inner());
            handles.drain(..).collect()
        };
        for h in conns {
            h.join().ok();
        }
        if let Some(h) = self.health.take() {
            h.join().ok();
        }
    }
}

impl Drop for Router {
    fn drop(&mut self) {
        self.do_shutdown();
    }
}

fn accept_loop(shared: &Arc<RouterShared>, listener: TcpListener) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let conn_shared = Arc::clone(shared);
        let handle = std::thread::Builder::new()
            .name("tr-route-conn".to_owned())
            .spawn(move || handle_conn(&conn_shared, stream));
        if let Ok(h) = handle {
            shared
                .conn_handles
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .push(h);
        }
    }
}

fn health_loop(shared: &Arc<RouterShared>) {
    let mut since_ping = shared.cfg.health_interval; // ping immediately
    while !shared.shutdown.load(Ordering::SeqCst) {
        if since_ping >= shared.cfg.health_interval {
            since_ping = Duration::ZERO;
            for backend in &shared.backends {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                // A failed ping flips `healthy` inside with_conn; one
                // more reconnect cycle per interval is the recovery path
                // for a backend that came back between pings.
                let _ = backend.with_conn(&shared.cfg, Client::ping);
            }
        }
        std::thread::sleep(READ_TICK);
        since_ping += READ_TICK;
    }
}

fn handle_conn(shared: &Arc<RouterShared>, stream: TcpStream) {
    stream.set_read_timeout(Some(READ_TICK)).ok();
    stream.set_nodelay(true).ok();
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let writer = ConnWriter::new(write_half);
    let mut reader = FrameReader::new(stream);
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let frame = match reader.next(shared.cfg.max_frame_bytes) {
            Ok(f) => f,
            Err(_) => break,
        };
        match frame {
            Frame::Idle => continue,
            Frame::Eof => break,
            Frame::TooLarge => {
                writer.send(&protocol::err_frame(
                    None,
                    ErrorCode::TooLarge,
                    &format!("frame exceeds {} bytes", shared.cfg.max_frame_bytes),
                ));
            }
            Frame::Line(bytes) => {
                if bytes.iter().all(u8::is_ascii_whitespace) {
                    continue;
                }
                let line = String::from_utf8_lossy(&bytes);
                match protocol::parse_request(&line) {
                    Ok(req) => writer.send(&answer(shared, req)),
                    Err(e) => writer.send(&protocol::err_frame(e.id.as_ref(), e.code, &e.message)),
                }
            }
        }
    }
}

/// Produces the reply frame for one parsed request. Everything runs on
/// the connection thread: the router's work per request is wire I/O, so
/// a worker pool would only add queueing.
fn answer(shared: &RouterShared, req: Request) -> String {
    let id = req.id;
    let op = req.body.op();
    match req.body {
        RequestBody::Ping => protocol::ok_frame(
            id.as_ref(),
            "ping",
            Json::obj().with("pong", Json::Bool(true)),
        ),
        RequestBody::ListDocs => {
            let docs = shared
                .routes
                .values()
                .map(|route| {
                    let mut doc = route.summary.clone();
                    doc.set(
                        "backends",
                        Json::Arr(
                            route
                                .backends
                                .iter()
                                .map(|&i| Json::from(shared.backends[i].spec.name.as_str()))
                                .collect(),
                        ),
                    );
                    doc
                })
                .collect();
            protocol::ok_frame(
                id.as_ref(),
                "list-docs",
                Json::obj().with("docs", Json::Arr(docs)),
            )
        }
        RequestBody::Stats => protocol::ok_frame(id.as_ref(), "stats", stats_fields(shared)),
        RequestBody::Query { doc, q, limit } => match routed_query(shared, &doc, &q) {
            Ok((hits, generation)) => protocol::ok_frame(
                id.as_ref(),
                "query",
                protocol::result_fields(&hits, limit).with("generation", Json::from(generation)),
            ),
            Err((code, message)) => protocol::err_frame(id.as_ref(), code, &message),
        },
        RequestBody::Batch {
            doc,
            queries,
            limit,
        } => {
            let mut results = Vec::with_capacity(queries.len());
            for q in &queries {
                match routed_query(shared, &doc, q) {
                    Ok((hits, _)) => results.push(protocol::result_fields(&hits, limit)),
                    Err((code, message)) => {
                        return protocol::err_frame(id.as_ref(), code, &message)
                    }
                }
            }
            protocol::ok_frame(
                id.as_ref(),
                "batch",
                Json::obj().with("results", Json::Arr(results)).with(
                    "batch",
                    Json::obj().with("queries", Json::from(queries.len())),
                ),
            )
        }
        _ => protocol::err_frame(
            id.as_ref(),
            ErrorCode::BadRequest,
            &format!("op {op:?} is not supported by the router — connect to a backend directly"),
        ),
    }
}

/// Routes one query: forwards whole when the cost model says fanout
/// does not pay (or only one backend holds the document), otherwise
/// scatters window-restricted `shard-query`s and concatenates.
fn routed_query(
    shared: &RouterShared,
    doc: &str,
    q: &str,
) -> Result<(RegionSet, u64), (ErrorCode, String)> {
    let m = RouterMetrics::get();
    let Some(route) = shared.routes.get(doc) else {
        return Err((ErrorCode::UnknownDoc, format!("no document {doc:?}")));
    };
    m.queries.inc();
    let replicas = route.backends.len();
    let width = if replicas < 2 {
        1
    } else {
        // Serial-cost proxy: one structural sweep over the document.
        let serial_ns = route.bytes as f64 * shared.cfg.cost_model.sweep_ns;
        choose_fanout(
            serial_ns,
            replicas.min(shared.cfg.max_fanout),
            &shared.cfg.cost_model,
        )
    };
    if width <= 1 {
        m.forwarded.inc();
        let reply = on_some_replica(shared, route, doc, |backend| {
            backend.with_conn(&shared.cfg, |c| c.shard_query(doc, q, 0, u32::MAX))
        })?;
        let hits = regions_from_reply(&reply).map_err(|e| (ErrorCode::Internal, e.to_string()))?;
        let generation = reply.get("generation").and_then(Json::as_u64).unwrap_or(0);
        return Ok((hits, generation));
    }
    m.scatter.inc();
    let bounds = segment_bounds(route.bytes as usize, width);
    let mut parts = Vec::with_capacity(width);
    let mut generation = 0u64;
    for shard in 0..width {
        let lo = if shard == 0 { 0 } else { bounds[shard] };
        let hi = if shard == width - 1 {
            u32::MAX
        } else {
            bounds[shard + 1]
        };
        m.shard_requests.inc();
        // Primary replica round-robin; retry-once lands on the others.
        let first = shard % replicas;
        let reply = on_some_replica_from(shared, route, doc, first, |backend| {
            backend.with_conn(&shared.cfg, |c| c.shard_query(doc, q, lo, hi))
        })?;
        generation = generation.max(reply.get("generation").and_then(Json::as_u64).unwrap_or(0));
        parts.push(regions_from_reply(&reply).map_err(|e| (ErrorCode::Internal, e.to_string()))?);
    }
    // The windows tile [0, ∞) in order, so the shard results are sorted
    // and disjoint: ordered concat reproduces the single-node answer.
    Ok((RegionSet::concat(&parts), generation))
}

/// Tries `f` on the document's replicas starting at the first one.
fn on_some_replica(
    shared: &RouterShared,
    route: &Route,
    doc: &str,
    f: impl FnMut(&Backend) -> Result<Json, ClientError>,
) -> Result<Json, (ErrorCode, String)> {
    on_some_replica_from(shared, route, doc, 0, f)
}

/// Tries `f` on the document's replicas, starting at offset `first` and
/// wrapping. Connection-level failures rotate to the next replica (at
/// most one full rotation — "retry once, then degrade"); a structured
/// backend error propagates immediately with its own code.
fn on_some_replica_from(
    shared: &RouterShared,
    route: &Route,
    doc: &str,
    first: usize,
    mut f: impl FnMut(&Backend) -> Result<Json, ClientError>,
) -> Result<Json, (ErrorCode, String)> {
    let replicas = route.backends.len();
    let mut last = None;
    // A sole replica still gets one more try: the second with_conn call
    // finds no pooled connection and runs a reconnect cycle (backoff +
    // jitter) before the request is declared degraded.
    for attempt in 0..replicas.max(2) {
        let backend = &shared.backends[route.backends[(first + attempt) % replicas]];
        match f(backend) {
            Ok(reply) => return Ok(reply),
            Err(ClientError::Server { code, message }) => {
                return Err((backend_code(&code), message));
            }
            Err(e) => last = Some((backend.spec.name.clone(), e)),
        }
    }
    RouterMetrics::get().degraded.inc();
    let (name, err) = last.expect("at least one replica attempted");
    Err((
        ErrorCode::Degraded,
        format!("document {doc:?}: backend {name:?} unreachable after retry: {err}"),
    ))
}

/// Maps a backend's wire error code back to the enum, so the router
/// relays `query_error`, `rejected`, … faithfully instead of flattening
/// everything to one code.
fn backend_code(code: &str) -> ErrorCode {
    match code {
        "query_error" => ErrorCode::Query,
        "rejected" => ErrorCode::Rejected,
        "timeout" => ErrorCode::Timeout,
        "shutting_down" => ErrorCode::ShuttingDown,
        "unknown_doc" => ErrorCode::UnknownDoc,
        "bad_request" => ErrorCode::BadRequest,
        _ => ErrorCode::Internal,
    }
}

/// Rebuilds a [`RegionSet`] from a shard reply's `regions` array. Shard
/// replies are uncapped, so this is the complete window result.
fn regions_from_reply(reply: &Json) -> Result<RegionSet, ClientError> {
    let arr = reply
        .get("regions")
        .and_then(Json::as_arr)
        .ok_or_else(|| ClientError::Protocol("shard reply missing \"regions\"".to_owned()))?;
    let mut lefts = Vec::with_capacity(arr.len());
    let mut rights = Vec::with_capacity(arr.len());
    for pair in arr {
        let bad = || ClientError::Protocol("malformed region pair in shard reply".to_owned());
        let pair = pair.as_arr().filter(|p| p.len() == 2).ok_or_else(bad)?;
        let l = pair[0]
            .as_u64()
            .filter(|&n| n <= u64::from(u32::MAX))
            .ok_or_else(bad)? as u32;
        let r = pair[1]
            .as_u64()
            .filter(|&n| n <= u64::from(u32::MAX))
            .ok_or_else(bad)? as u32;
        if l > r {
            return Err(bad());
        }
        lefts.push(l);
        rights.push(r);
    }
    Ok(RegionSet::from_columns(lefts, rights))
}

/// The router's `stats` reply: its own counters plus per-backend health
/// and (best-effort) each live backend's admission-queue depth and
/// rejection count — the operator's view of which instance is saturating.
fn stats_fields(shared: &RouterShared) -> Json {
    let mut counters = Json::obj();
    for (name, v) in tr_obs::counter_values() {
        if name.starts_with("router.") {
            counters.set(&name, Json::from(v));
        }
    }
    let backends = shared
        .backends
        .iter()
        .enumerate()
        .map(|(bi, b)| {
            let mut j = Json::obj()
                .with("name", Json::from(b.spec.name.as_str()))
                .with("addr", Json::from(b.spec.addr.as_str()))
                .with("healthy", Json::Bool(b.healthy.load(Ordering::SeqCst)))
                .with(
                    "docs",
                    Json::from(
                        shared
                            .routes
                            .values()
                            .filter(|r| r.backends.contains(&bi))
                            .count(),
                    ),
                );
            // Admission visibility: relay the backend's own queue depth
            // and rejection counter when it answers in time.
            if let Ok(stats) = b.with_conn(&shared.cfg, Client::stats) {
                if let Some(depth) = stats.get("queue_depth").and_then(Json::as_u64) {
                    j.set("queue_depth", Json::from(depth));
                }
                if let Some(rej) = stats
                    .get("counters")
                    .and_then(|c| c.get("serve.rejected"))
                    .and_then(Json::as_u64)
                {
                    j.set("rejected", Json::from(rej));
                }
            }
            j
        })
        .collect();
    Json::obj()
        .with(
            "uptime_ms",
            Json::from(shared.started.elapsed().as_millis() as u64),
        )
        .with("docs", Json::from(shared.routes.len()))
        .with("backends", Json::Arr(backends))
        .with("counters", counters)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::server::{Server, ServerConfig};
    use tr_query::Engine;

    #[test]
    fn backends_toml_parses_and_validates() {
        let specs = parse_backends_toml(
            "# cluster\n\n[[backend]]\nname = \"alpha\"\naddr = \"127.0.0.1:7879\"\n\
             \n[[backend]]\naddr = \"127.0.0.1:7880\"  # trailing comment\nname = \"beta\"\n",
        )
        .unwrap();
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[0].name, "alpha");
        assert_eq!(specs[1].addr, "127.0.0.1:7880");
        for bad in [
            "",
            "[[backend]]\nname = \"a\"\n",              // missing addr
            "name = \"a\"\n",                           // key outside block
            "[[backend]]\nname = \"a\"\naddr = bare\n", // unquoted value
            "[[backend]]\nname = \"a\"\nport = \"1\"\naddr = \"x\"\n", // unknown key
            "[[backend]]\nname = \"a\"\naddr = \"x\"\n[[backend]]\nname = \"a\"\naddr = \"y\"\n",
        ] {
            assert!(parse_backends_toml(bad).is_err(), "{bad:?}");
        }
    }

    fn sgml_doc(paras: usize) -> String {
        let mut s = String::from("<play>");
        for i in 0..paras {
            s.push_str(&format!(
                "<act><speech>scene {i} to be or not to be</speech>\
                 <speech>words words {i}</speech></act>"
            ));
        }
        s.push_str("</play>");
        s
    }

    fn backend(docs: &[(&str, &str)]) -> Server {
        let mut catalog = Catalog::new();
        for (name, text) in docs {
            catalog.insert(name, Engine::from_sgml(text).unwrap());
        }
        Server::start(catalog, "127.0.0.1:0", ServerConfig::default()).unwrap()
    }

    fn router_over(servers: &[&Server], cfg: RouterConfig) -> Router {
        let specs = servers
            .iter()
            .enumerate()
            .map(|(i, s)| BackendSpec {
                name: format!("b{i}"),
                addr: s.local_addr().to_string(),
            })
            .collect();
        Router::start(specs, "127.0.0.1:0", cfg).unwrap()
    }

    #[test]
    fn routed_queries_match_direct_answers() {
        let shared_text = sgml_doc(40);
        // "solo" lives on one backend; "both" is replicated on the two.
        let b0 = backend(&[("solo", "<d><s>alpha beta</s></d>"), ("both", &shared_text)]);
        let b1 = backend(&[("both", &shared_text)]);
        // remote_fanout_ns = 0 forces the scatter path for any
        // replicated document, exercising the merge deterministically.
        let cfg = RouterConfig {
            cost_model: CostModel {
                remote_fanout_ns: 0.0,
                ..CostModel::default()
            },
            ..RouterConfig::default()
        };
        let router = router_over(&[&b0, &b1], cfg);
        assert_eq!(router.num_docs(), 2);

        let mut via_router = Client::connect(router.local_addr()).unwrap();
        let mut direct = Client::connect(b0.local_addr()).unwrap();
        for q in [
            "speech",
            r#"speech matching "be""#,
            "speech within act",
            "act containing speech",
        ] {
            let routed = via_router.query("both", q).unwrap();
            let straight = direct.query("both", q).unwrap();
            assert_eq!(
                routed.get("hits"),
                straight.get("hits"),
                "hits diverge for {q:?}"
            );
            assert_eq!(
                routed.get("regions"),
                straight.get("regions"),
                "regions diverge for {q:?}"
            );
        }
        // Scatter actually happened (2 replicas, zero fanout cost).
        let stats = via_router.stats().unwrap();
        let counters = stats.get("counters").unwrap();
        assert!(counters.get("router.scatter").unwrap().as_u64().unwrap() >= 1);

        // Single-replica documents forward.
        let routed = via_router.query("solo", r#"s matching "beta""#).unwrap();
        assert_eq!(routed.get("hits").unwrap().as_u64(), Some(1));

        // Batch rides the same path.
        let reply = via_router.batch("both", &["speech", "act"]).unwrap();
        assert_eq!(reply.get("results").unwrap().as_arr().unwrap().len(), 2);

        // Backend query errors relay with their own code.
        let err = via_router.query("both", "no_such_name").unwrap_err();
        assert_eq!(err.code(), Some("query_error"));
        let err = via_router.query("nope", "speech").unwrap_err();
        assert_eq!(err.code(), Some("unknown_doc"));

        // Unsupported ops are refused, not hung.
        let err = via_router.mutate("both", Json::Arr(vec![])).unwrap_err();
        assert_eq!(err.code(), Some("bad_request"));

        router.shutdown();
        b0.shutdown();
        b1.shutdown();
    }

    #[test]
    fn dead_backend_degrades_structurally() {
        let b0 = backend(&[("left", "<d><s>alpha</s></d>")]);
        let b1 = backend(&[("right", "<d><s>omega</s></d>")]);
        let router = router_over(&[&b0, &b1], RouterConfig::default());
        let mut client = Client::connect(router.local_addr()).unwrap();
        client.query("left", "s").unwrap();
        client.query("right", "s").unwrap();

        let reconnects_before = tr_obs::counter_value("router.backend_reconnects");
        b1.shutdown();
        // The dead backend's document degrades (structured error, no
        // hang); the surviving backend keeps answering.
        let err = client.query("right", "s").unwrap_err();
        assert_eq!(err.code(), Some("degraded"));
        assert_eq!(
            client
                .query("left", "s")
                .unwrap()
                .get("hits")
                .unwrap()
                .as_u64(),
            Some(1)
        );
        client.ping().unwrap();
        // The failed request went through a reconnect cycle (counted)
        // before degrading.
        assert!(tr_obs::counter_value("router.backend_reconnects") > reconnects_before);

        let stats = client.stats().unwrap();
        let backends = stats.get("backends").unwrap().as_arr().unwrap();
        assert_eq!(backends.len(), 2);
        assert_eq!(
            backends[0].get("healthy"),
            Some(&Json::Bool(true)),
            "surviving backend stays healthy"
        );

        router.shutdown();
        b0.shutdown();
    }
}
