//! # tr-serve — a concurrent multi-document query server
//!
//! Everything below tr-serve answers one question for one caller inside
//! one process. This crate turns the stack into a long-lived service: a
//! [`Catalog`] of immutable, index-built [`tr_query::Engine`]s shared
//! across TCP connections, a newline-delimited JSON [`protocol`], and the
//! robustness machinery a server owes its operators — bounded admission
//! ([`queue`]), per-request deadlines, frame-size and connection limits,
//! malformed-input hardening, and a graceful drain on shutdown.
//!
//! The design bets are:
//!
//! * **immutability buys concurrency** — each engine generation is an
//!   immutable snapshot; queries need no locks beyond the engines'
//!   internal memo caches, and a `mutate` builds a *successor*
//!   generation (sharing untouched index segments) and atomically swaps
//!   it into the catalog rather than editing anything in place;
//!   per-session state (`define-view`) lives in the connection, layered
//!   over the shared engine;
//! * **overload is an answer, not a stall** — admission is `try_push`:
//!   when the queue is full the client hears `rejected` immediately,
//!   and a `watch`er that reads slower than its document mutates is
//!   shed to a single `watch-lagged` notice ([`watch`]) instead of
//!   buffering without bound;
//! * **bad input costs one reply** — a malformed frame, oversize line,
//!   hostile query, or even a panicking handler produces a structured
//!   error on that connection and touches nothing else.
//!
//! ```no_run
//! use tr_serve::{Catalog, Client, Server, ServerConfig};
//!
//! let catalog = Catalog::open(std::path::Path::new("corpus/"))?;
//! let server = Server::start(catalog, "127.0.0.1:0", ServerConfig::default())?;
//! let mut client = Client::connect(server.local_addr())?;
//! let reply = client.query("hamlet", r#"speech matching "bodkin""#)?;
//! println!("{} hits", reply.get("hits").unwrap());
//! server.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! Observability: connections run under a `serve.conn` span, worker-side
//! execution under `serve.request`; counters `serve.accepted`,
//! `serve.completed`, `serve.failed`, `serve.rejected`, `serve.timeouts`,
//! `serve.malformed`, `serve.conns.*`, the live-document families
//! `mutate.*` and `watch.*`, and the `serve.queue_wait_ns` histogram land
//! in the process-global `tr_obs` registry (see DESIGN.md for the full
//! taxonomy). The invariant `accepted == completed + failed` holds
//! exactly once the server has drained.

#![warn(missing_docs)]

pub mod catalog;
pub mod client;
pub mod protocol;
pub mod queue;
pub mod router;
pub mod server;
pub mod watch;

pub use catalog::{Catalog, CatalogError, DocSummary};
pub use client::{Client, ClientError, ReplyTiming};
pub use protocol::ErrorCode;
pub use router::{parse_backends_toml, BackendSpec, Router, RouterConfig};
pub use server::{Server, ServerConfig};

#[cfg(test)]
mod tests {
    use super::*;
    use tr_obs::Json;
    use tr_query::Engine;

    fn two_doc_catalog() -> Catalog {
        let mut catalog = Catalog::new();
        catalog.insert(
            "play",
            Engine::from_sgml(
                "<play><act><speech>to be or not to be</speech>\
                 <speech>ay there's the rub</speech></act></play>",
            )
            .unwrap(),
        );
        catalog.insert(
            "prog",
            Engine::from_source("program p; proc q; begin end; begin end.").unwrap(),
        );
        catalog
    }

    #[test]
    fn end_to_end_round_trip() {
        let server =
            Server::start(two_doc_catalog(), "127.0.0.1:0", ServerConfig::default()).unwrap();
        let addr = server.local_addr();
        let mut client = Client::connect(addr).unwrap();

        client.ping().unwrap();

        let docs = client.list_docs().unwrap();
        let names: Vec<_> = docs
            .get("docs")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .map(|d| d.get("name").unwrap().as_str().unwrap().to_owned())
            .collect();
        assert_eq!(names, vec!["play", "prog"]);

        let reply = client.query("play", r#"speech matching "rub""#).unwrap();
        assert_eq!(reply.get("hits").unwrap().as_u64(), Some(1));

        // Session views are per-connection: visible here, invisible on a
        // fresh connection.
        client
            .define_view("play", "hit", r#"speech matching "be""#)
            .unwrap();
        let reply = client.query("play", "hit").unwrap();
        assert_eq!(reply.get("hits").unwrap().as_u64(), Some(1));
        let mut other = Client::connect(addr).unwrap();
        let err = other.query("play", "hit").unwrap_err();
        assert_eq!(err.code(), Some("query_error"));

        // Batch against the second document.
        let reply = client.batch("prog", &["Proc", "Proc_body"]).unwrap();
        let results = reply.get("results").unwrap().as_arr().unwrap();
        assert_eq!(results.len(), 2);

        // Errors are structured, and the connection survives them.
        let err = client.query("nope", "x").unwrap_err();
        assert_eq!(err.code(), Some("unknown_doc"));
        client.send_raw("this is not json").unwrap();
        let reply = client.recv().unwrap();
        assert_eq!(
            reply.get("error").unwrap().get("code").unwrap().as_str(),
            Some("bad_json")
        );
        client.ping().unwrap();

        server.shutdown();
    }

    #[test]
    fn oversize_frames_are_refused_without_dropping_the_conn() {
        let cfg = ServerConfig {
            max_frame_bytes: 256,
            ..ServerConfig::default()
        };
        let server = Server::start(two_doc_catalog(), "127.0.0.1:0", cfg).unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();
        client.send_raw(&"x".repeat(4096)).unwrap();
        let reply = client.recv().unwrap();
        assert_eq!(
            reply.get("error").unwrap().get("code").unwrap().as_str(),
            Some("too_large")
        );
        // Still alive.
        client.ping().unwrap();

        // An oversize line short enough to arrive *whole* (body and
        // newline in one read) must get the same answer: the frame cap
        // applies to completed lines too, not only to mid-line overflow
        // — and repeatedly, with the connection surviving each time.
        for _ in 0..3 {
            client.send_raw(&"y".repeat(1024)).unwrap();
            let reply = client.recv().unwrap();
            assert_eq!(
                reply.get("error").unwrap().get("code").unwrap().as_str(),
                Some("too_large"),
                "completed-line oversize must not degrade to bad_json"
            );
        }
        client.ping().unwrap();
        server.shutdown();
    }

    #[test]
    fn empty_document_is_servable() {
        // The zero-byte edge of the empty-text audit, end to end: an
        // engine over "" is cataloged, listed (0 bytes, 1 segment), and
        // queried without wedging the connection.
        let mut catalog = Catalog::new();
        catalog.insert("blank", Engine::from_sgml("").unwrap());
        let server = Server::start(catalog, "127.0.0.1:0", ServerConfig::default()).unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();
        let docs = client.list_docs().unwrap();
        let doc = &docs.get("docs").unwrap().as_arr().unwrap()[0];
        assert_eq!(doc.get("bytes").unwrap().as_u64(), Some(0));
        assert_eq!(doc.get("regions").unwrap().as_u64(), Some(0));
        assert_eq!(doc.get("segments").unwrap().as_u64(), Some(1));
        // No names exist in an empty schema, so any query is a clean
        // structured error — and the connection survives it.
        let err = client.query("blank", "speech").unwrap_err();
        assert_eq!(err.code(), Some("query_error"));
        client.ping().unwrap();
        server.shutdown();
    }

    #[test]
    fn stats_reports_serve_counters() {
        let server =
            Server::start(two_doc_catalog(), "127.0.0.1:0", ServerConfig::default()).unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();
        client.query("play", "speech").unwrap();
        let stats = client.stats().unwrap();
        assert_eq!(stats.get("docs").unwrap().as_u64(), Some(2));
        let counters = stats.get("counters").unwrap();
        assert!(counters.get("serve.accepted").unwrap().as_u64().unwrap() >= 1);
        // Segmentation counters ride along: each catalog engine records
        // its corpus partitioning at build time.
        assert!(counters.get("corpus.segments").unwrap().as_u64().unwrap() >= 2);
        assert!(matches!(stats.get("uptime_ms"), Some(Json::Num(_))));
        server.shutdown();
    }
}
