//! The TCP server: accept loop, connection threads, bounded worker pool.
//!
//! Threading model (all `std`, no async runtime):
//!
//! * one **accept thread** enforces the connection limit;
//! * one **connection thread** per client reads frames, answers cheap
//!   session-state ops (`ping`, `list-docs`, `stats`, `define-view`,
//!   `unwatch`) inline, and submits heavy ops (`query`, `batch`,
//!   `explain`, `mutate`, `watch`) to the shared admission queue —
//!   [`crate::queue::Queue::try_push`] never blocks, so an overloaded
//!   server answers `rejected` immediately instead of hanging;
//! * a fixed pool of **worker threads** drains the queue, checks each
//!   job's deadline, and writes the reply to that job's connection;
//! * one **watch notifier thread** delivers standing-query diff frames
//!   (see [`crate::watch`]) so a slow watcher's socket never blocks a
//!   mutating worker.
//!
//! Malformed input of any kind — broken JSON, missing fields, oversize
//! frames, hostile query nesting — produces a JSON error reply on the
//! offending connection and nothing else: other sessions never notice,
//! and a panicking handler is caught and answered as an `internal` error.
//!
//! **Shutdown** ([`Server::shutdown`]) is a drain, not an abort: stop
//! accepting, join connection threads (they notice within one read
//! timeout), close the queue, and let workers finish every admitted job —
//! which is why the counter invariant `serve.accepted == serve.completed
//! + serve.failed` holds exactly at quiescence.

use crate::catalog::Catalog;
use crate::protocol::{self, ErrorCode, Request, RequestBody};
use crate::queue::{PushError, Queue};
use crate::watch::WatchRegistry;
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use tr_obs::Json;
use tr_query::{Engine, SessionViews};

/// Tuning knobs for [`Server::start`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Worker threads executing queries (≥ 1).
    pub workers: usize,
    /// Admission queue capacity; a full queue answers `rejected`.
    pub queue_capacity: usize,
    /// Maximum simultaneous connections; excess gets a `rejected` frame
    /// and an immediate close.
    pub max_connections: usize,
    /// Maximum request frame size in bytes; longer lines are answered
    /// with `too_large` and discarded.
    pub max_frame_bytes: usize,
    /// Per-request deadline: a job still queued past it is answered
    /// `timeout` instead of executed.
    pub deadline: Duration,
    /// Per-watcher pending event frame cap: a standing query whose
    /// client reads slower than the document mutates has its backlog
    /// shed and replaced by one `watch-lagged` frame.
    pub watch_queue_capacity: usize,
    /// Minimum spacing between diff frames per watcher: changes landing
    /// inside the window are merged into one diff whose `coalesced`
    /// field counts them. Zero (the default) delivers every diff.
    pub watch_coalesce: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get().min(8))
                .unwrap_or(4),
            queue_capacity: 128,
            max_connections: 64,
            max_frame_bytes: 1 << 20,
            deadline: Duration::from_secs(5),
            watch_queue_capacity: 64,
            watch_coalesce: Duration::ZERO,
        }
    }
}

/// How long connection threads sleep in `read` before re-checking the
/// shutdown flag — the upper bound on how stale a drain can be.
pub(crate) const READ_TICK: Duration = Duration::from_millis(50);

/// Cached handles into the `tr_obs` registry. The request counters keep
/// the invariant `accepted == completed + failed` at quiescence;
/// `rejected`/`timeouts`/`malformed` are disjoint views of the traffic
/// that never reached (or never finished in time for) a handler.
struct ServeMetrics {
    conns_accepted: Arc<tr_obs::Counter>,
    conns_rejected: Arc<tr_obs::Counter>,
    frames: Arc<tr_obs::Counter>,
    malformed: Arc<tr_obs::Counter>,
    accepted: Arc<tr_obs::Counter>,
    completed: Arc<tr_obs::Counter>,
    failed: Arc<tr_obs::Counter>,
    rejected: Arc<tr_obs::Counter>,
    timeouts: Arc<tr_obs::Counter>,
}

impl ServeMetrics {
    fn get() -> &'static ServeMetrics {
        static METRICS: OnceLock<ServeMetrics> = OnceLock::new();
        METRICS.get_or_init(|| ServeMetrics {
            conns_accepted: tr_obs::counter("serve.conns.accepted"),
            conns_rejected: tr_obs::counter("serve.conns.rejected"),
            frames: tr_obs::counter("serve.frames"),
            malformed: tr_obs::counter("serve.malformed"),
            accepted: tr_obs::counter("serve.accepted"),
            completed: tr_obs::counter("serve.completed"),
            failed: tr_obs::counter("serve.failed"),
            rejected: tr_obs::counter("serve.rejected"),
            timeouts: tr_obs::counter("serve.timeouts"),
        })
    }
}

/// One admitted heavy request, waiting for a worker.
struct Job {
    engine: Arc<Engine>,
    views: Arc<SessionViews>,
    /// The submitting connection's id — `watch` registrations are owned
    /// by it and die with it.
    conn: u64,
    id: Option<Json>,
    body: RequestBody,
    writer: Arc<ConnWriter>,
    enqueued: Instant,
    deadline: Instant,
}

/// The write half of a connection. Workers, the watch notifier, and the
/// connection thread share it; the mutex keeps reply and event frames
/// line-atomic.
pub(crate) struct ConnWriter {
    stream: Mutex<TcpStream>,
}

impl ConnWriter {
    pub(crate) fn new(stream: TcpStream) -> ConnWriter {
        ConnWriter {
            stream: Mutex::new(stream),
        }
    }

    /// Best-effort frame write — a vanished client is not an error.
    pub(crate) fn send(&self, frame: &str) {
        let mut s = self.stream.lock().unwrap_or_else(|p| p.into_inner());
        let _ = s.write_all(frame.as_bytes());
    }
}

struct Shared {
    catalog: Catalog,
    cfg: ServerConfig,
    queue: Queue<Job>,
    watches: WatchRegistry,
    shutdown: AtomicBool,
    conns: AtomicUsize,
    next_conn: AtomicU64,
    conn_handles: Mutex<Vec<JoinHandle<()>>>,
    started: Instant,
}

/// A running server. Dropping it performs a graceful shutdown.
pub struct Server {
    local: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    notifier: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// accept loop and worker pool.
    pub fn start(
        catalog: Catalog,
        addr: impl ToSocketAddrs,
        cfg: ServerConfig,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shared = Arc::new(Shared {
            queue: Queue::new(cfg.queue_capacity),
            watches: WatchRegistry::new(cfg.watch_queue_capacity, cfg.watch_coalesce),
            catalog,
            cfg,
            shutdown: AtomicBool::new(false),
            conns: AtomicUsize::new(0),
            next_conn: AtomicU64::new(0),
            conn_handles: Mutex::new(Vec::new()),
            started: Instant::now(),
        });
        let workers = (0..shared.cfg.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("tr-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
            })
            .collect::<io::Result<Vec<_>>>()?;
        let notifier = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("tr-serve-watch".to_owned())
                .spawn(move || shared.watches.notifier_loop())?
        };
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("tr-serve-accept".to_owned())
                .spawn(move || accept_loop(&shared, listener))?
        };
        Ok(Server {
            local,
            shared,
            accept: Some(accept),
            workers,
            notifier: Some(notifier),
        })
    }

    /// The bound address (for ephemeral-port servers).
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }

    /// The number of catalog documents being served.
    pub fn num_docs(&self) -> usize {
        self.shared.catalog.len()
    }

    /// Gracefully shuts down: stop accepting, drain every admitted
    /// request, join all threads.
    pub fn shutdown(mut self) {
        self.do_shutdown();
    }

    fn do_shutdown(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.local);
        if let Some(h) = self.accept.take() {
            h.join().ok();
        }
        // Connection threads notice the flag within one read tick; once
        // they are gone, no producer remains.
        let conns: Vec<_> = {
            let mut handles = self
                .shared
                .conn_handles
                .lock()
                .unwrap_or_else(|p| p.into_inner());
            handles.drain(..).collect()
        };
        for h in conns {
            h.join().ok();
        }
        // Drain: workers finish every admitted job, then exit.
        self.shared.queue.close();
        for h in self.workers.drain(..) {
            h.join().ok();
        }
        // Last, the watch notifier: no worker can queue further events
        // now, so closing the registry flushes the remaining frames and
        // unregisters every surviving watcher.
        self.shared.watches.close();
        if let Some(h) = self.notifier.take() {
            h.join().ok();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.do_shutdown();
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: TcpListener) {
    let m = ServeMetrics::get();
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        if shared.conns.load(Ordering::SeqCst) >= shared.cfg.max_connections {
            m.conns_rejected.inc();
            let mut stream = stream;
            let _ = stream.write_all(
                protocol::err_frame(None, ErrorCode::Rejected, "connection limit reached")
                    .as_bytes(),
            );
            continue; // dropping the stream closes it
        }
        m.conns_accepted.inc();
        shared.conns.fetch_add(1, Ordering::SeqCst);
        let conn_shared = Arc::clone(shared);
        let handle = std::thread::Builder::new()
            .name("tr-serve-conn".to_owned())
            .spawn(move || {
                handle_conn(&conn_shared, stream);
                conn_shared.conns.fetch_sub(1, Ordering::SeqCst);
            });
        match handle {
            Ok(h) => shared
                .conn_handles
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .push(h),
            Err(_) => {
                shared.conns.fetch_sub(1, Ordering::SeqCst);
            }
        }
    }
}

/// What one attempt to read a frame produced.
pub(crate) enum Frame {
    /// A complete line (without the `\n`).
    Line(Vec<u8>),
    /// The line exceeded the frame limit; its bytes are being discarded.
    TooLarge,
    /// Read timeout — nothing arrived; re-check shutdown and try again.
    Idle,
    /// The peer closed the connection.
    Eof,
}

/// Incremental line reader over a non-blocking-ish socket (read
/// timeouts), with oversize-line discard. Shared with [`crate::router`],
/// whose connection loop reads the same frames.
pub(crate) struct FrameReader {
    stream: TcpStream,
    buf: Vec<u8>,
    discarding: bool,
}

impl FrameReader {
    pub(crate) fn new(stream: TcpStream) -> FrameReader {
        FrameReader {
            stream,
            buf: Vec::new(),
            discarding: false,
        }
    }

    pub(crate) fn next(&mut self, max: usize) -> io::Result<Frame> {
        loop {
            if self.discarding {
                if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                    self.buf.drain(..=pos);
                    self.discarding = false;
                } else {
                    self.buf.clear();
                }
            }
            if !self.discarding {
                if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                    // A complete line is still subject to the frame cap:
                    // without this check, an oversize line whose newline
                    // arrives in the same read as its body would be
                    // answered `bad_json` instead of `too_large` (and
                    // the answer would depend on TCP chunking).
                    if pos > max {
                        self.buf.drain(..=pos);
                        return Ok(Frame::TooLarge);
                    }
                    let mut line: Vec<u8> = self.buf.drain(..=pos).collect();
                    line.pop(); // the \n
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    return Ok(Frame::Line(line));
                }
                if self.buf.len() > max {
                    self.buf.clear();
                    self.discarding = true;
                    return Ok(Frame::TooLarge);
                }
            }
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => return Ok(Frame::Eof),
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    return Ok(Frame::Idle)
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

fn handle_conn(shared: &Arc<Shared>, stream: TcpStream) {
    let _conn = tr_obs::span("serve.conn");
    let m = ServeMetrics::get();
    let conn_id = shared.next_conn.fetch_add(1, Ordering::SeqCst) + 1;
    stream.set_read_timeout(Some(READ_TICK)).ok();
    stream.set_nodelay(true).ok();
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let writer = Arc::new(ConnWriter::new(write_half));
    let mut reader = FrameReader::new(stream);
    // Per-session, per-document view definitions. Snapshots (`Arc`s) are
    // attached to jobs at admission, so a view defined *before* a query
    // is always visible to it, regardless of worker scheduling.
    let mut sessions: HashMap<String, Arc<SessionViews>> = HashMap::new();
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let frame = match reader.next(shared.cfg.max_frame_bytes) {
            Ok(f) => f,
            Err(_) => break,
        };
        match frame {
            Frame::Idle => continue,
            Frame::Eof => break,
            Frame::TooLarge => {
                m.malformed.inc();
                writer.send(&protocol::err_frame(
                    None,
                    ErrorCode::TooLarge,
                    &format!("frame exceeds {} bytes", shared.cfg.max_frame_bytes),
                ));
            }
            Frame::Line(bytes) => {
                if bytes.iter().all(u8::is_ascii_whitespace) {
                    continue;
                }
                m.frames.inc();
                let line = String::from_utf8_lossy(&bytes);
                match protocol::parse_request(&line) {
                    Ok(req) => handle_request(shared, &writer, &mut sessions, conn_id, req),
                    Err(e) => {
                        m.malformed.inc();
                        writer.send(&protocol::err_frame(e.id.as_ref(), e.code, &e.message));
                    }
                }
            }
        }
    }
    // This connection's standing queries die with it.
    shared.watches.unregister_conn(conn_id);
}

fn handle_request(
    shared: &Arc<Shared>,
    writer: &Arc<ConnWriter>,
    sessions: &mut HashMap<String, Arc<SessionViews>>,
    conn_id: u64,
    req: Request,
) {
    let m = ServeMetrics::get();
    if shared.shutdown.load(Ordering::SeqCst) {
        writer.send(&protocol::err_frame(
            req.id.as_ref(),
            ErrorCode::ShuttingDown,
            "server is draining",
        ));
        return;
    }
    let id = req.id;
    match req.body {
        // Cheap session/introspection ops run right here on the
        // connection thread; they are accepted and resolved in one step.
        RequestBody::Ping => {
            m.accepted.inc();
            writer.send(&protocol::ok_frame(
                id.as_ref(),
                "ping",
                Json::obj().with("pong", Json::Bool(true)),
            ));
            m.completed.inc();
        }
        RequestBody::ListDocs => {
            m.accepted.inc();
            let docs = shared.shared_docs_json();
            writer.send(&protocol::ok_frame(
                id.as_ref(),
                "list-docs",
                Json::obj().with("docs", docs),
            ));
            m.completed.inc();
        }
        RequestBody::Stats => {
            m.accepted.inc();
            writer.send(&protocol::ok_frame(
                id.as_ref(),
                "stats",
                shared.stats_fields(),
            ));
            m.completed.inc();
        }
        RequestBody::DefineView { doc, name, def } => {
            m.accepted.inc();
            let engine = match shared.catalog.try_engine(&doc) {
                Some(Ok(engine)) => engine,
                Some(Err(why)) => {
                    m.failed.inc();
                    writer.send(&protocol::err_frame(
                        id.as_ref(),
                        ErrorCode::Internal,
                        &format!("document {doc:?} failed to load: {why}"),
                    ));
                    return;
                }
                None => {
                    m.failed.inc();
                    writer.send(&protocol::err_frame(
                        id.as_ref(),
                        ErrorCode::UnknownDoc,
                        &format!("no document {doc:?}"),
                    ));
                    return;
                }
            };
            let entry = sessions.entry(doc).or_default();
            let mut views = (**entry).clone();
            match engine.define_session_view(&mut views, &name, &def) {
                Ok(()) => {
                    *entry = Arc::new(views);
                    writer.send(&protocol::ok_frame(
                        id.as_ref(),
                        "define-view",
                        Json::obj().with("view", Json::from(name)),
                    ));
                    m.completed.inc();
                }
                Err(e) => {
                    m.failed.inc();
                    writer.send(&protocol::err_frame(
                        id.as_ref(),
                        ErrorCode::Query,
                        &e.to_string(),
                    ));
                }
            }
        }
        RequestBody::Unwatch { watch } => {
            m.accepted.inc();
            if shared.watches.unregister(conn_id, watch) {
                writer.send(&protocol::ok_frame(
                    id.as_ref(),
                    "unwatch",
                    Json::obj().with("watch", Json::from(watch)),
                ));
                m.completed.inc();
            } else {
                m.failed.inc();
                writer.send(&protocol::err_frame(
                    id.as_ref(),
                    ErrorCode::UnknownWatch,
                    &format!("no watch {watch} on this connection"),
                ));
            }
        }
        // Heavy ops go through admission control to the worker pool.
        body @ (RequestBody::Query { .. }
        | RequestBody::Batch { .. }
        | RequestBody::Explain { .. }
        | RequestBody::Mutate { .. }
        | RequestBody::Watch { .. }
        | RequestBody::ShardQuery { .. }
        | RequestBody::Save { .. }) => {
            let doc = match &body {
                RequestBody::Query { doc, .. }
                | RequestBody::Batch { doc, .. }
                | RequestBody::Explain { doc, .. }
                | RequestBody::Mutate { doc, .. }
                | RequestBody::Watch { doc, .. }
                | RequestBody::ShardQuery { doc, .. }
                | RequestBody::Save { doc, .. } => doc.clone(),
                _ => unreachable!(),
            };
            // Forces a lazy document's first load; the decode runs on
            // this connection's thread, once per document per process.
            let engine = match shared.catalog.try_engine(&doc) {
                Some(Ok(engine)) => engine,
                Some(Err(why)) => {
                    m.accepted.inc();
                    m.failed.inc();
                    writer.send(&protocol::err_frame(
                        id.as_ref(),
                        ErrorCode::Internal,
                        &format!("document {doc:?} failed to load: {why}"),
                    ));
                    return;
                }
                None => {
                    m.accepted.inc();
                    m.failed.inc();
                    writer.send(&protocol::err_frame(
                        id.as_ref(),
                        ErrorCode::UnknownDoc,
                        &format!("no document {doc:?}"),
                    ));
                    return;
                }
            };
            let now = Instant::now();
            let job = Job {
                engine,
                views: sessions.get(&doc).cloned().unwrap_or_default(),
                conn: conn_id,
                id,
                body,
                writer: Arc::clone(writer),
                enqueued: now,
                deadline: now + shared.cfg.deadline,
            };
            match shared.queue.try_push(job) {
                Ok(()) => m.accepted.inc(),
                Err(PushError::Full(job)) => {
                    m.rejected.inc();
                    job.writer.send(&protocol::err_frame(
                        job.id.as_ref(),
                        ErrorCode::Rejected,
                        "admission queue full — retry later",
                    ));
                }
                Err(PushError::Closed(job)) => {
                    job.writer.send(&protocol::err_frame(
                        job.id.as_ref(),
                        ErrorCode::ShuttingDown,
                        "server is draining",
                    ));
                }
            }
        }
    }
}

impl Shared {
    fn shared_docs_json(&self) -> Json {
        // Summaries come from manifests for unloaded lazy documents, so
        // `list-docs` never forces an index build.
        let docs = self
            .catalog
            .summaries()
            .into_iter()
            .map(|s| {
                Json::obj()
                    .with("name", Json::from(s.name))
                    .with("regions", Json::from(s.regions))
                    .with("bytes", Json::from(s.bytes))
                    .with(
                        "names",
                        Json::Arr(s.names.into_iter().map(Json::from).collect()),
                    )
                    .with("segments", Json::from(s.segments))
                    .with("loaded", Json::Bool(s.loaded))
            })
            .collect();
        Json::Arr(docs)
    }

    fn stats_fields(&self) -> Json {
        let mut counters = Json::obj();
        for (name, v) in tr_obs::counter_values() {
            let relevant = name.starts_with("serve.")
                || name.starts_with("corpus.")
                || name.starts_with("mutate.")
                || name.starts_with("watch.")
                || name.starts_with("plan.")
                || name.starts_with("store.")
                || name.starts_with("router.")
                || name.starts_with("partition.")
                || name == "exec.segment_waves"
                || name == "exec.merge_ns";
            if relevant {
                counters.set(&name, Json::from(v));
            }
        }
        Json::obj()
            .with(
                "uptime_ms",
                Json::from(self.started.elapsed().as_millis() as u64),
            )
            .with("docs", Json::from(self.catalog.len()))
            .with("queue_depth", Json::from(self.queue.len()))
            .with("watchers", Json::from(self.watches.len()))
            .with("counters", counters)
    }
}

/// Test-only per-request stall, read once from `TR_SERVE_TEST_STALL_MS`.
/// CI's load-gate self-test sets it to simulate a queueing regression —
/// every heavy op then sleeps this long on the worker before executing,
/// which inflates tail latency and (at sufficient offered rate) backs up
/// the admission queue. `None` in every real deployment.
fn test_stall() -> Option<Duration> {
    static STALL: OnceLock<Option<Duration>> = OnceLock::new();
    *STALL.get_or_init(|| {
        std::env::var("TR_SERVE_TEST_STALL_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .filter(|&ms| ms > 0)
            .map(Duration::from_millis)
    })
}

fn worker_loop(shared: &Arc<Shared>) {
    let m = ServeMetrics::get();
    let queue_wait = tr_obs::histogram("serve.queue_wait_ns");
    while let Some(job) = shared.queue.pop() {
        queue_wait.record(job.enqueued.elapsed().as_nanos() as u64);
        if let Some(stall) = test_stall() {
            std::thread::sleep(stall);
        }
        if Instant::now() >= job.deadline {
            m.timeouts.inc();
            m.failed.inc();
            job.writer.send(&protocol::err_frame(
                job.id.as_ref(),
                ErrorCode::Timeout,
                "deadline expired before execution",
            ));
            continue;
        }
        let _span = tr_obs::span("serve.request");
        // A handler panic must cost exactly one error reply, never the
        // worker (or the process).
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| execute(shared, &job)));
        match outcome {
            Ok(Ok(frame)) => {
                // `None` means the handler already sent its reply (watch
                // registration replies go out under the mutation lock so
                // no event frame can overtake them).
                if let Some(frame) = frame {
                    job.writer.send(&frame);
                }
                m.completed.inc();
            }
            Ok(Err((code, message))) => {
                m.failed.inc();
                job.writer
                    .send(&protocol::err_frame(job.id.as_ref(), code, &message));
            }
            Err(_) => {
                m.failed.inc();
                job.writer.send(&protocol::err_frame(
                    job.id.as_ref(),
                    ErrorCode::Internal,
                    "request handler panicked",
                ));
            }
        }
    }
}

/// Runs one heavy op against its engine, returning the ok frame —
/// `Ok(None)` when the handler already wrote its own reply.
fn execute(shared: &Shared, job: &Job) -> Result<Option<String>, (ErrorCode, String)> {
    match &job.body {
        RequestBody::Query { q, limit, .. } => {
            let hits = job
                .engine
                .query_with(&job.views, q)
                .map_err(|e| (ErrorCode::Query, e.to_string()))?;
            Ok(Some(protocol::ok_frame(
                job.id.as_ref(),
                "query",
                protocol::result_fields(&hits, *limit)
                    .with("generation", Json::from(job.engine.generation())),
            )))
        }
        RequestBody::Batch { queries, limit, .. } => {
            let refs: Vec<&str> = queries.iter().map(String::as_str).collect();
            let (results, stats) = job
                .engine
                .query_batch_with(&job.views, &refs)
                .map_err(|e| (ErrorCode::Query, e.to_string()))?;
            let results = results
                .iter()
                .map(|hits| protocol::result_fields(hits, *limit))
                .collect();
            let batch = Json::obj()
                .with("queries", Json::from(stats.queries))
                .with("cache_hits", Json::from(stats.cache_hits))
                .with("distinct_nodes", Json::from(stats.distinct_nodes))
                .with("nodes_evaluated", Json::from(stats.nodes_evaluated))
                .with("threads", Json::from(stats.threads));
            Ok(Some(protocol::ok_frame(
                job.id.as_ref(),
                "batch",
                Json::obj()
                    .with("results", Json::Arr(results))
                    .with("batch", batch),
            )))
        }
        RequestBody::Explain { q, .. } => {
            let text = job
                .engine
                .explain_with(&job.views, q)
                .map_err(|e| (ErrorCode::Query, e.to_string()))?;
            Ok(Some(protocol::ok_frame(
                job.id.as_ref(),
                "explain",
                Json::obj().with("text", Json::from(text)),
            )))
        }
        RequestBody::Mutate { doc, edits } => {
            // Serialize against other mutations of this document, then
            // re-fetch the engine: the snapshot taken at admission may
            // already be a superseded generation.
            let _guard = shared
                .catalog
                .lock_for_mutation(doc)
                .ok_or_else(|| (ErrorCode::UnknownDoc, format!("no document {doc:?}")))?;
            let engine = match shared.catalog.try_engine(doc) {
                Some(Ok(engine)) => engine,
                Some(Err(why)) => {
                    return Err((
                        ErrorCode::Internal,
                        format!("document {doc:?} failed to load: {why}"),
                    ))
                }
                None => return Err((ErrorCode::UnknownDoc, format!("no document {doc:?}"))),
            };
            let (next, stats) = engine
                .apply_edits(edits)
                .map_err(|e| (ErrorCode::Mutate, e.to_string()))?;
            let next = Arc::new(next);
            if !shared.catalog.swap(doc, Arc::clone(&next)) {
                return Err((
                    ErrorCode::Internal,
                    format!("document {doc:?} vanished during mutation"),
                ));
            }
            // Still under the mutation lock: standing queries see each
            // generation exactly once, in order.
            shared.watches.notify(doc, &next);
            Ok(Some(protocol::ok_frame(
                job.id.as_ref(),
                "mutate",
                Json::obj()
                    .with("generation", Json::from(stats.generation))
                    .with("edits", Json::from(stats.edits))
                    .with(
                        "segments_reindexed",
                        Json::from(stats.segments_reindexed as u64),
                    )
                    .with("segments_reused", Json::from(stats.segments_reused as u64))
                    .with("cache_kept", Json::from(stats.cache_kept as u64))
                    .with("cache_dropped", Json::from(stats.cache_dropped as u64))
                    .with("text_changed", Json::Bool(stats.text_changed)),
            )))
        }
        RequestBody::Watch { doc, q, limit } => {
            // Register under the mutation lock and send the reply before
            // releasing it: the first diff a client sees is guaranteed to
            // be relative to the baseline in this reply.
            let _guard = shared
                .catalog
                .lock_for_mutation(doc)
                .ok_or_else(|| (ErrorCode::UnknownDoc, format!("no document {doc:?}")))?;
            let engine = match shared.catalog.try_engine(doc) {
                Some(Ok(engine)) => engine,
                Some(Err(why)) => {
                    return Err((
                        ErrorCode::Internal,
                        format!("document {doc:?} failed to load: {why}"),
                    ))
                }
                None => return Err((ErrorCode::UnknownDoc, format!("no document {doc:?}"))),
            };
            let hits = engine
                .query_with(&job.views, q)
                .map_err(|e| (ErrorCode::Query, e.to_string()))?;
            let watch = shared.watches.register(
                job.conn,
                doc,
                q,
                Arc::clone(&job.views),
                Arc::clone(&job.writer),
                hits.clone(),
            );
            job.writer.send(&protocol::ok_frame(
                job.id.as_ref(),
                "watch",
                protocol::result_fields(&hits, *limit)
                    .with("watch", Json::from(watch))
                    .with("generation", Json::from(engine.generation())),
            ));
            Ok(None)
        }
        RequestBody::ShardQuery { q, lo, hi, .. } => {
            let hits = job
                .engine
                .query_shard(&job.views, q, *lo, *hi)
                .map_err(|e| (ErrorCode::Query, e.to_string()))?;
            // Shard replies are merge inputs, never displays: every
            // region ships, uncapped, so the router's ordered concat is
            // byte-identical to a single-node evaluation.
            Ok(Some(protocol::ok_frame(
                job.id.as_ref(),
                "shard-query",
                protocol::result_fields(&hits, usize::MAX)
                    .with("lo", Json::from(u64::from(*lo)))
                    .with("hi", Json::from(u64::from(*hi)))
                    .with("generation", Json::from(job.engine.generation())),
            )))
        }
        RequestBody::Save { doc, path } => {
            // Serialize against mutations and re-fetch: the saved bytes
            // must be the *current* generation, not the admission-time
            // snapshot, and no successor may be published mid-write.
            let _guard = shared
                .catalog
                .lock_for_mutation(doc)
                .ok_or_else(|| (ErrorCode::UnknownDoc, format!("no document {doc:?}")))?;
            let engine = match shared.catalog.try_engine(doc) {
                Some(Ok(engine)) => engine,
                Some(Err(why)) => {
                    return Err((
                        ErrorCode::Internal,
                        format!("document {doc:?} failed to load: {why}"),
                    ))
                }
                None => return Err((ErrorCode::UnknownDoc, format!("no document {doc:?}"))),
            };
            let target = match path {
                Some(p) => std::path::PathBuf::from(p),
                None => shared.catalog.default_save_path(doc).ok_or_else(|| {
                    (
                        ErrorCode::BadRequest,
                        format!("document {doc:?} has no backing file — supply \"path\""),
                    )
                })?,
            };
            engine.save_to(&target).map_err(|e| {
                (
                    ErrorCode::Internal,
                    format!("cannot save {doc:?} to {}: {e}", target.display()),
                )
            })?;
            Ok(Some(protocol::ok_frame(
                job.id.as_ref(),
                "save",
                Json::obj()
                    .with("path", Json::from(target.display().to_string()))
                    .with("generation", Json::from(engine.generation())),
            )))
        }
        _ => Err((
            ErrorCode::Internal,
            "non-heavy op reached the worker pool".to_owned(),
        )),
    }
}
