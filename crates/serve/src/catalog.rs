//! The document catalog: one shared [`Engine`] generation per document.
//!
//! Engines themselves are immutable; **documents** are not. Each slot
//! holds the document's *current generation* behind an `RwLock`, and the
//! live-document path ([`Catalog::lock_for_mutation`] + [`Catalog::swap`])
//! publishes a successor engine while in-flight queries keep their `Arc`
//! to the generation they started on.
//!
//! A corpus directory is scanned once at startup; every recognised file
//! becomes a named document (the file stem). Engines are shared across
//! connections behind `Arc`s (the engine stack is `Sync`: its caches are
//! internally locked). Raw text documents and v1 `.trx` stores are built
//! eagerly — index construction is the expensive part, and the whole
//! point of a server is paying it once. v2/v3 `.trx` stores carry a
//! segment [`Manifest`](tr_store::Manifest) that can be peeked with one
//! constant-size read, so they load **lazily**: startup validates the
//! manifest (magic, extents, caps) and defers the full decode + suffix
//! array until the first query against that document. A server fronting
//! a large corpus thus starts in milliseconds and `list-docs` answers
//! from manifests alone. When a deferred v3 load does fire it goes
//! through `tr_store::load_document_shared`, i.e. the mapped open via
//! the process-wide weak cache — the columns are used in place rather
//! than decoded, the slot holds the cache guard, and documents that
//! alias the same file (or repeat opens of one path) share a single
//! mapping: `store.mmap_opens` does not grow per session.
//!
//! Recognised files:
//!
//! | pattern          | loaded as                                        |
//! |------------------|--------------------------------------------------|
//! | `*.trx` (v2/v3)  | lazily via `tr_store::peek_manifest` + first use |
//! | `*.trx` (v1)     | eagerly via `tr_store::load_document`            |
//! | `*.sgml`/`*.xml` | SGML-lite text via `Engine::from_sgml`           |
//! | `*.src`/`*.txt`  | toy-language source via `Engine::from_source`    |
//!
//! Anything else (subdirectories, dotfiles, READMEs…) is ignored. A file
//! that matches but fails startup validation aborts the catalog: a broken
//! corpus is an operator error the server must refuse to start on, not
//! skip past. A lazy document whose *deferred* load fails (e.g. the file
//! was corrupted after startup) caches the failure and reports it on
//! every access rather than re-hitting the disk.

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};
use tr_query::Engine;

/// A named collection of shared engines.
#[derive(Default)]
pub struct Catalog {
    docs: BTreeMap<String, DocSlot>,
}

/// One catalog slot. The engine reference is behind an `RwLock` so the
/// live-document path can **swap** it for a newer generation while
/// concurrent queries keep their `Arc` to the old one; `mutate` is the
/// per-document mutation lock serializing writers (queries never take
/// it — they only read-lock the slot for the nanoseconds of an `Arc`
/// clone).
struct DocSlot {
    state: RwLock<SlotState>,
    mutate: Mutex<()>,
    /// The corpus file this document came from, when it came from one.
    /// `save` without an explicit path targets it (with a `.trx`
    /// extension); documents inserted programmatically have none.
    source: Option<PathBuf>,
}

impl DocSlot {
    fn ready(engine: Arc<Engine>) -> DocSlot {
        DocSlot::ready_from(engine, None)
    }

    fn ready_from(engine: Arc<Engine>, source: Option<PathBuf>) -> DocSlot {
        DocSlot {
            state: RwLock::new(SlotState::Ready(ReadyDoc { engine, map: None })),
            mutate: Mutex::new(()),
            source,
        }
    }
}

/// What a slot currently holds.
enum SlotState {
    /// A resident engine (built at startup, forced, or swapped in).
    Ready(ReadyDoc),
    /// v2/v3 store: manifest validated at startup, body loaded on first
    /// use. A failed deferred load is cached in `failed`, so a corrupt
    /// file costs one decode attempt, not one per query.
    Lazy(LazyDoc),
}

/// A resident engine plus, for documents that came off the mapped v3
/// path, the shared-mapping guard. Holding the guard for the slot's
/// lifetime keeps the entry in `tr_store`'s weak cache alive, so other
/// documents (or re-opens) of the same `.trx` file reuse one mapping —
/// `store.mmap_opens` stays flat no matter how many sessions or aliases
/// hit the file.
struct ReadyDoc {
    engine: Arc<Engine>,
    map: Option<Arc<tr_store::MappedStore>>,
}

/// A v2/v3 `.trx` document awaiting its first use.
struct LazyDoc {
    path: PathBuf,
    manifest: tr_store::Manifest,
    failed: Option<String>,
}

/// A held per-document mutation lock (see [`Catalog::lock_for_mutation`]).
pub struct MutationGuard<'a>(#[allow(dead_code)] MutexGuard<'a, ()>);

/// Per-document metadata for `list-docs`-style listings, available
/// without forcing lazy documents to load.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DocSummary {
    /// Document name (file stem).
    pub name: String,
    /// Total stored regions across all names.
    pub regions: u64,
    /// Document text length in bytes.
    pub bytes: u64,
    /// Region names, in schema order.
    pub names: Vec<String>,
    /// Position-range segments the document is partitioned into.
    pub segments: usize,
    /// Whether the engine is resident (always true for eager documents).
    pub loaded: bool,
}

/// Why a catalog could not be opened.
#[derive(Debug)]
pub enum CatalogError {
    /// The corpus directory could not be read.
    Io(std::io::Error),
    /// A recognised file failed to load (path, reason).
    Load(String, String),
    /// Two files share a stem — document names must be unique.
    Duplicate(String),
    /// The directory held no recognised documents at all.
    Empty,
    /// The corpus text exceeds the configured admission cap (bytes, cap).
    /// A capped instance refuses to start rather than degrade under a
    /// corpus it was not sized for — shard the corpus across backends
    /// behind a router instead.
    OverCapacity(u64, u64),
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatalogError::Io(e) => write!(f, "cannot read corpus directory: {e}"),
            CatalogError::Load(path, why) => write!(f, "cannot load {path}: {why}"),
            CatalogError::Duplicate(name) => {
                write!(f, "duplicate document name {name:?} in corpus")
            }
            CatalogError::Empty => write!(f, "corpus directory holds no documents"),
            CatalogError::OverCapacity(bytes, cap) => write!(
                f,
                "corpus is {bytes} bytes but the admission cap is {cap} — \
                 shard it across backends or raise --max-corpus-bytes"
            ),
        }
    }
}

impl std::error::Error for CatalogError {}

impl Catalog {
    /// An empty catalog (add documents with [`Catalog::insert`]).
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Scans `dir` and loads every recognised file.
    pub fn open(dir: &Path) -> Result<Catalog, CatalogError> {
        Catalog::open_capped(dir, None)
    }

    /// [`Catalog::open`] with an admission cap: when the corpus text
    /// totals more than `max_corpus_bytes`, the catalog refuses to open
    /// ([`CatalogError::OverCapacity`]). Lazy `.trx` documents are
    /// measured from their manifests, so the check never forces a load.
    pub fn open_capped(dir: &Path, max_corpus_bytes: Option<u64>) -> Result<Catalog, CatalogError> {
        let mut catalog = Catalog::new();
        let mut entries: Vec<_> = std::fs::read_dir(dir)
            .map_err(CatalogError::Io)?
            .collect::<Result<_, _>>()
            .map_err(CatalogError::Io)?;
        entries.sort_by_key(|e| e.path());
        for entry in entries {
            let path = entry.path();
            if !path.is_file() {
                continue;
            }
            let Some(mut loaded) = load_path(&path)
                .map_err(|why| CatalogError::Load(path.display().to_string(), why))?
            else {
                continue; // unrecognised extension
            };
            loaded.source = Some(path.clone());
            let name = path
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_default();
            if name.is_empty() || name.starts_with('.') {
                continue;
            }
            if catalog.docs.contains_key(&name) {
                return Err(CatalogError::Duplicate(name));
            }
            catalog.docs.insert(name, loaded);
        }
        if catalog.docs.is_empty() {
            return Err(CatalogError::Empty);
        }
        if let Some(cap) = max_corpus_bytes {
            let bytes = catalog.total_bytes();
            if bytes > cap {
                return Err(CatalogError::OverCapacity(bytes, cap));
            }
        }
        Ok(catalog)
    }

    /// Total corpus text bytes across all documents, answered from
    /// manifests for lazy documents (no load is forced).
    pub fn total_bytes(&self) -> u64 {
        self.summaries().iter().map(|s| s.bytes).sum()
    }

    /// Adds (or replaces) a document under `name`.
    pub fn insert(&mut self, name: &str, engine: Engine) {
        self.docs
            .insert(name.to_owned(), DocSlot::ready(Arc::new(engine)));
    }

    /// The engine for `name`, if present and loadable. Forces a lazy
    /// document's first load; a document whose deferred load failed
    /// behaves as absent here (use [`Catalog::try_engine`] to
    /// distinguish).
    pub fn get(&self, name: &str) -> Option<Arc<Engine>> {
        self.try_engine(name)?.ok()
    }

    /// The engine for `name`: `None` if the catalog has no such
    /// document, `Some(Err(reason))` if it exists but its deferred load
    /// failed. Forces a lazy document's first load.
    pub fn try_engine(&self, name: &str) -> Option<Result<Arc<Engine>, String>> {
        let slot = self.docs.get(name)?;
        {
            let state = slot.state.read().unwrap_or_else(|p| p.into_inner());
            match &*state {
                SlotState::Ready(ready) => return Some(Ok(Arc::clone(&ready.engine))),
                SlotState::Lazy(lazy) => {
                    if let Some(why) = &lazy.failed {
                        return Some(Err(why.clone()));
                    }
                }
            }
        }
        // Deferred load: take the write lock, re-check (another thread
        // may have won the race), then load in place.
        let mut state = slot.state.write().unwrap_or_else(|p| p.into_inner());
        match &mut *state {
            SlotState::Ready(ready) => Some(Ok(Arc::clone(&ready.engine))),
            SlotState::Lazy(lazy) => {
                if let Some(why) = &lazy.failed {
                    return Some(Err(why.clone()));
                }
                match tr_store::load_document_shared(&lazy.path) {
                    Ok((doc, map)) => {
                        let engine = Arc::new(Engine::from_stored(doc));
                        *state = SlotState::Ready(ReadyDoc {
                            engine: Arc::clone(&engine),
                            map,
                        });
                        Some(Ok(engine))
                    }
                    Err(e) => {
                        let why = e.to_string();
                        lazy.failed = Some(why.clone());
                        Some(Err(why))
                    }
                }
            }
        }
    }

    /// Serializes mutations of `name`: the live-document path holds this
    /// guard across read-engine → apply-edits → [`Catalog::swap`] →
    /// notify-watchers, so concurrent `mutate` requests to one document
    /// apply in a total order (and watch diffs never interleave).
    /// Returns `None` for an unknown document.
    pub fn lock_for_mutation(&self, name: &str) -> Option<MutationGuard<'_>> {
        let slot = self.docs.get(name)?;
        Some(MutationGuard(
            slot.mutate.lock().unwrap_or_else(|p| p.into_inner()),
        ))
    }

    /// Publishes a new engine generation for `name` (no-op returning
    /// `false` for an unknown document). Queries started before the swap
    /// finish against the old generation via their own `Arc`.
    pub fn swap(&self, name: &str, engine: Arc<Engine>) -> bool {
        let Some(slot) = self.docs.get(name) else {
            return false;
        };
        let mut state = slot.state.write().unwrap_or_else(|p| p.into_inner());
        // Carry the mapping guard across generations: a successor engine
        // may still borrow column views of the mapped file, and keeping
        // the guard keeps the weak-cache entry warm for other aliases.
        let map = match &*state {
            SlotState::Ready(ready) => ready.map.clone(),
            SlotState::Lazy(_) => None,
        };
        *state = SlotState::Ready(ReadyDoc { engine, map });
        true
    }

    /// Per-document metadata, sorted by name. Lazy documents answer from
    /// their manifest without being forced to load.
    pub fn summaries(&self) -> Vec<DocSummary> {
        self.docs
            .iter()
            .map(|(name, slot)| {
                let state = slot.state.read().unwrap_or_else(|p| p.into_inner());
                match &*state {
                    SlotState::Ready(ready) => summary_from_engine(name, &ready.engine, true),
                    SlotState::Lazy(lazy) => DocSummary {
                        name: name.clone(),
                        regions: lazy.manifest.total_regions(),
                        bytes: lazy.manifest.text_bytes,
                        names: lazy.manifest.names.clone(),
                        segments: lazy.manifest.num_segments(),
                        loaded: false,
                    },
                }
            })
            .collect()
    }

    /// Where a parameterless `save` of `name` lands: the document's
    /// source file with a `.trx` extension. `None` for unknown documents
    /// and for documents inserted programmatically (no backing file) —
    /// those need an explicit path.
    pub fn default_save_path(&self, name: &str) -> Option<PathBuf> {
        let source = self.docs.get(name)?.source.as_ref()?;
        Some(source.with_extension("trx"))
    }

    /// Document names, sorted.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.docs.keys().map(String::as_str)
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// True when no documents are loaded.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }
}

fn summary_from_engine(name: &str, engine: &Engine, loaded: bool) -> DocSummary {
    DocSummary {
        name: name.to_owned(),
        regions: engine.instance().len() as u64,
        bytes: engine.text().len() as u64,
        names: engine.schema().names().map(str::to_owned).collect(),
        segments: engine.segment_count(),
        loaded,
    }
}

/// Loads one corpus file by extension; `Ok(None)` means "not a document".
fn load_path(path: &Path) -> Result<Option<DocSlot>, String> {
    let ext = path
        .extension()
        .map(|e| e.to_string_lossy().to_ascii_lowercase())
        .unwrap_or_default();
    match ext.as_str() {
        "trx" => {
            // v2/v3 stores defer the body; v1 (or anything peek rejects
            // for a non-manifest reason) goes through the eager loader,
            // whose error aborts the catalog.
            if let Ok(manifest) = tr_store::peek_manifest(path) {
                return Ok(Some(DocSlot {
                    state: RwLock::new(SlotState::Lazy(LazyDoc {
                        path: path.to_owned(),
                        manifest,
                        failed: None,
                    })),
                    mutate: Mutex::new(()),
                    source: Some(path.to_owned()),
                }));
            }
            let doc = tr_store::load_document(path).map_err(|e| e.to_string())?;
            Ok(Some(DocSlot::ready(Arc::new(Engine::from_stored(doc)))))
        }
        "sgml" | "xml" => {
            let text = read_utf8(path)?;
            Engine::from_sgml(&text)
                .map(|e| Some(DocSlot::ready(Arc::new(e))))
                .map_err(|e| e.to_string())
        }
        "src" | "txt" => {
            let text = read_utf8(path)?;
            Engine::from_source(&text)
                .map(|e| Some(DocSlot::ready(Arc::new(e))))
                .map_err(|e| e.to_string())
        }
        _ => Ok(None),
    }
}

fn read_utf8(path: &Path) -> Result<String, String> {
    let raw = std::fs::read(path).map_err(|e| e.to_string())?;
    String::from_utf8(raw).map_err(|_| "not UTF-8 text".to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("tr_serve_catalog_{}_{name}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn opens_a_mixed_corpus() {
        let dir = tmp_dir("mixed");
        std::fs::write(dir.join("a.sgml"), "<d><s>alpha beta</s></d>").unwrap();
        std::fs::write(
            dir.join("b.src"),
            "program a; proc b; begin end; begin end.",
        )
        .unwrap();
        std::fs::write(dir.join("README.md"), "not a document").unwrap();
        // A persisted index alongside the raw files.
        let e = Engine::from_sgml("<d><s>gamma</s></d>").unwrap();
        tr_store::save_document(dir.join("c.trx"), e.text(), e.instance(), e.rig()).unwrap();

        let catalog = Catalog::open(&dir).unwrap();
        assert_eq!(catalog.names().collect::<Vec<_>>(), vec!["a", "b", "c"]);
        assert_eq!(catalog.len(), 3);
        let a = catalog.get("a").unwrap();
        assert_eq!(a.query(r#"s matching "beta""#).unwrap().len(), 1);
        let c = catalog.get("c").unwrap();
        assert_eq!(c.query(r#"s matching "gamma""#).unwrap().len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn trx_stores_load_lazily() {
        let dir = tmp_dir("lazy");
        let e = Engine::from_sgml("<d><s>alpha</s><s>beta gamma</s></d>").unwrap();
        tr_store::save_document(dir.join("doc.trx"), e.text(), e.instance(), e.rig()).unwrap();

        let catalog = Catalog::open(&dir).unwrap();
        // Listing answers from the manifest without forcing the load.
        let summary = &catalog.summaries()[0];
        assert!(!summary.loaded, "trx store must not load at startup");
        assert_eq!(summary.name, "doc");
        assert_eq!(summary.regions, e.instance().len() as u64);
        assert_eq!(summary.bytes, e.text().len() as u64);
        assert_eq!(summary.segments, e.segment_count());
        assert!(summary.names.contains(&"s".to_owned()));

        // First access forces the load; after it the summary flips.
        let forced = catalog.get("doc").unwrap();
        assert_eq!(forced.query(r#"s matching "gamma""#).unwrap().len(), 1);
        assert!(catalog.summaries()[0].loaded);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[cfg(unix)]
    #[test]
    fn aliased_trx_documents_share_one_mapping() {
        let dir = tmp_dir("aliased");
        let e = Engine::from_sgml("<d><s>alpha</s><s>beta gamma</s></d>").unwrap();
        tr_store::save_document(dir.join("a.trx"), e.text(), e.instance(), e.rig()).unwrap();
        std::os::unix::fs::symlink(dir.join("a.trx"), dir.join("b.trx")).unwrap();

        let catalog = Catalog::open(&dir).unwrap();
        assert_eq!(catalog.len(), 2);
        let hits_before = tr_obs::counter_value("store.mmap_cache_hits");
        let a = catalog.get("a").unwrap();
        let b = catalog.get("b").unwrap();
        assert_eq!(a.query(r#"s matching "gamma""#).unwrap().len(), 1);
        assert_eq!(b.query(r#"s matching "gamma""#).unwrap().len(), 1);
        // Two documents, one file: the second load is a cache hit, not a
        // second mapping. (Other tests in this binary open *distinct*
        // paths, which can only miss, so the hit delta is race-free; the
        // strict `store.mmap_opens` delta is pinned by the dedicated
        // `shared_mmap_cache` integration test.)
        assert_eq!(
            tr_obs::counter_value("store.mmap_cache_hits"),
            hits_before + 1
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lazy_load_failure_is_cached_and_reported() {
        let dir = tmp_dir("lazyfail");
        let e = Engine::from_sgml("<d><s>alpha beta</s></d>").unwrap();
        let path = dir.join("doc.trx");
        tr_store::save_document(&path, e.text(), e.instance(), e.rig()).unwrap();

        let catalog = Catalog::open(&dir).unwrap();
        // Corrupt the body *after* startup validation: flip a byte near
        // the end (inside the checksummed body, past the peeked header).
        let mut raw = std::fs::read(&path).unwrap();
        let n = raw.len();
        raw[n - 12] ^= 0xff;
        std::fs::write(&path, &raw).unwrap();

        match catalog.try_engine("doc") {
            Some(Err(why)) => assert!(!why.is_empty()),
            other => panic!("expected cached load failure, got {:?}", other.is_some()),
        }
        assert!(catalog.get("doc").is_none(), "failed doc behaves as absent");
        assert!(!catalog.summaries()[0].loaded);
        assert!(catalog.try_engine("missing").is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn swap_publishes_a_new_generation() {
        let mut catalog = Catalog::new();
        catalog.insert("d", Engine::from_sgml("<d><s>alpha</s></d>").unwrap());
        let old = catalog.get("d").unwrap();
        assert_eq!(old.generation(), 0);

        let _guard = catalog.lock_for_mutation("d").unwrap();
        let (next, _) = old
            .apply_edits(&[tr_core::mutate::Edit::append(" tail")])
            .unwrap();
        assert!(catalog.swap("d", Arc::new(next)));
        let new = catalog.get("d").unwrap();
        assert_eq!(new.generation(), 1);
        assert!(new.text().ends_with(" tail"));
        // The old generation is still queryable by holders of its Arc.
        assert_eq!(old.generation(), 0);
        assert!(!old.text().ends_with(" tail"));
        // Unknown documents: no guard, no swap.
        assert!(catalog.lock_for_mutation("nope").is_none());
        assert!(!catalog.swap("nope", new));
    }

    #[test]
    fn admission_cap_refuses_an_oversize_corpus() {
        let dir = tmp_dir("capped");
        std::fs::write(dir.join("a.sgml"), "<d><s>alpha beta gamma delta</s></d>").unwrap();
        let bytes = Catalog::open(&dir).unwrap().total_bytes();
        assert!(bytes > 0);
        // A cap below the corpus refuses to open; at or above it, opens.
        match Catalog::open_capped(&dir, Some(bytes - 1)) {
            Err(CatalogError::OverCapacity(b, c)) => {
                assert_eq!(b, bytes);
                assert_eq!(c, bytes - 1);
            }
            other => panic!("expected OverCapacity, got ok={}", other.is_ok()),
        }
        assert!(Catalog::open_capped(&dir, Some(bytes)).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn default_save_path_tracks_the_source_file() {
        let dir = tmp_dir("savepath");
        std::fs::write(dir.join("a.sgml"), "<d><s>alpha</s></d>").unwrap();
        let catalog = Catalog::open(&dir).unwrap();
        assert_eq!(catalog.default_save_path("a"), Some(dir.join("a.trx")));
        assert_eq!(catalog.default_save_path("missing"), None);
        // Programmatic inserts have no backing file.
        let mut mem = Catalog::new();
        mem.insert("m", Engine::from_sgml("<d><s>x</s></d>").unwrap());
        assert_eq!(mem.default_save_path("m"), None);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn broken_corpus_refuses_to_open() {
        let dir = tmp_dir("broken");
        std::fs::write(dir.join("bad.trx"), b"definitely not an index").unwrap();
        assert!(matches!(Catalog::open(&dir), Err(CatalogError::Load(..))));
        std::fs::remove_dir_all(&dir).ok();

        let dir = tmp_dir("empty");
        assert!(matches!(Catalog::open(&dir), Err(CatalogError::Empty)));
        std::fs::remove_dir_all(&dir).ok();
    }
}
