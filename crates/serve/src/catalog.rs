//! The document catalog: one shared, immutable [`Engine`] per document.
//!
//! A corpus directory is scanned once at startup; every recognised file
//! becomes a named document (the file stem). Engines are built eagerly —
//! index construction is the expensive part, and the whole point of a
//! server is paying it once — and shared across connections behind `Arc`s
//! (the engine stack is `Sync`: its caches are internally locked).
//!
//! Recognised files:
//!
//! | pattern        | loaded as                                       |
//! |----------------|--------------------------------------------------|
//! | `*.trx`        | persisted index via `tr_store::load_document`    |
//! | `*.sgml`/`*.xml` | SGML-lite text via `Engine::from_sgml`          |
//! | `*.src`/`*.txt` | toy-language source via `Engine::from_source`   |
//!
//! Anything else (subdirectories, dotfiles, READMEs…) is ignored. A file
//! that matches but fails to load aborts the catalog: a broken corpus is
//! an operator error the server must refuse to start on, not skip past.

use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;
use std::sync::Arc;
use tr_query::Engine;

/// A named collection of shared engines.
#[derive(Default)]
pub struct Catalog {
    docs: BTreeMap<String, Arc<Engine>>,
}

/// Why a catalog could not be opened.
#[derive(Debug)]
pub enum CatalogError {
    /// The corpus directory could not be read.
    Io(std::io::Error),
    /// A recognised file failed to load (path, reason).
    Load(String, String),
    /// Two files share a stem — document names must be unique.
    Duplicate(String),
    /// The directory held no recognised documents at all.
    Empty,
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatalogError::Io(e) => write!(f, "cannot read corpus directory: {e}"),
            CatalogError::Load(path, why) => write!(f, "cannot load {path}: {why}"),
            CatalogError::Duplicate(name) => {
                write!(f, "duplicate document name {name:?} in corpus")
            }
            CatalogError::Empty => write!(f, "corpus directory holds no documents"),
        }
    }
}

impl std::error::Error for CatalogError {}

impl Catalog {
    /// An empty catalog (add documents with [`Catalog::insert`]).
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Scans `dir` and loads every recognised file.
    pub fn open(dir: &Path) -> Result<Catalog, CatalogError> {
        let mut catalog = Catalog::new();
        let mut entries: Vec<_> = std::fs::read_dir(dir)
            .map_err(CatalogError::Io)?
            .collect::<Result<_, _>>()
            .map_err(CatalogError::Io)?;
        entries.sort_by_key(|e| e.path());
        for entry in entries {
            let path = entry.path();
            if !path.is_file() {
                continue;
            }
            let Some(engine) = load_path(&path)
                .map_err(|why| CatalogError::Load(path.display().to_string(), why))?
            else {
                continue; // unrecognised extension
            };
            let name = path
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_default();
            if name.is_empty() || name.starts_with('.') {
                continue;
            }
            if catalog.docs.contains_key(&name) {
                return Err(CatalogError::Duplicate(name));
            }
            catalog.docs.insert(name, Arc::new(engine));
        }
        if catalog.docs.is_empty() {
            return Err(CatalogError::Empty);
        }
        Ok(catalog)
    }

    /// Adds (or replaces) a document under `name`.
    pub fn insert(&mut self, name: &str, engine: Engine) {
        self.docs.insert(name.to_owned(), Arc::new(engine));
    }

    /// The engine for `name`, if present.
    pub fn get(&self, name: &str) -> Option<&Arc<Engine>> {
        self.docs.get(name)
    }

    /// Document names, sorted.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.docs.keys().map(String::as_str)
    }

    /// Name/engine pairs, sorted by name.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Arc<Engine>)> {
        self.docs.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// True when no documents are loaded.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }
}

/// Loads one corpus file by extension; `Ok(None)` means "not a document".
fn load_path(path: &Path) -> Result<Option<Engine>, String> {
    let ext = path
        .extension()
        .map(|e| e.to_string_lossy().to_ascii_lowercase())
        .unwrap_or_default();
    match ext.as_str() {
        "trx" => {
            let doc = tr_store::load_document(path).map_err(|e| e.to_string())?;
            Ok(Some(Engine::from_stored(doc)))
        }
        "sgml" | "xml" => {
            let text = read_utf8(path)?;
            Engine::from_sgml(&text)
                .map(Some)
                .map_err(|e| e.to_string())
        }
        "src" | "txt" => {
            let text = read_utf8(path)?;
            Engine::from_source(&text)
                .map(Some)
                .map_err(|e| e.to_string())
        }
        _ => Ok(None),
    }
}

fn read_utf8(path: &Path) -> Result<String, String> {
    let raw = std::fs::read(path).map_err(|e| e.to_string())?;
    String::from_utf8(raw).map_err(|_| "not UTF-8 text".to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("tr_serve_catalog_{}_{name}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn opens_a_mixed_corpus() {
        let dir = tmp_dir("mixed");
        std::fs::write(dir.join("a.sgml"), "<d><s>alpha beta</s></d>").unwrap();
        std::fs::write(
            dir.join("b.src"),
            "program a; proc b; begin end; begin end.",
        )
        .unwrap();
        std::fs::write(dir.join("README.md"), "not a document").unwrap();
        // A persisted index alongside the raw files.
        let e = Engine::from_sgml("<d><s>gamma</s></d>").unwrap();
        tr_store::save_document(dir.join("c.trx"), e.text(), e.instance(), e.rig()).unwrap();

        let catalog = Catalog::open(&dir).unwrap();
        assert_eq!(catalog.names().collect::<Vec<_>>(), vec!["a", "b", "c"]);
        assert_eq!(catalog.len(), 3);
        let a = catalog.get("a").unwrap();
        assert_eq!(a.query(r#"s matching "beta""#).unwrap().len(), 1);
        let c = catalog.get("c").unwrap();
        assert_eq!(c.query(r#"s matching "gamma""#).unwrap().len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn broken_corpus_refuses_to_open() {
        let dir = tmp_dir("broken");
        std::fs::write(dir.join("bad.trx"), b"definitely not an index").unwrap();
        assert!(matches!(Catalog::open(&dir), Err(CatalogError::Load(..))));
        std::fs::remove_dir_all(&dir).ok();

        let dir = tmp_dir("empty");
        assert!(matches!(Catalog::open(&dir), Err(CatalogError::Empty)));
        std::fs::remove_dir_all(&dir).ok();
    }
}
