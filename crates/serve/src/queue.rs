//! A bounded MPMC admission queue with drain-on-close semantics.
//!
//! Producers (connection threads) never block: [`Queue::try_push`] either
//! admits the item or reports `Full` so the caller can send a structured
//! `rejected` reply — overload must surface as backpressure the client
//! can see, not as an invisible pile-up. Consumers (workers) block in
//! [`Queue::pop`], which keeps returning queued items after
//! [`Queue::close`] until the queue is empty — that drain is what makes
//! shutdown graceful: every admitted request still gets its reply.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// See module docs.
pub struct Queue<T> {
    inner: Mutex<Inner<T>>,
    takers: Condvar,
    capacity: usize,
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// Why a push was refused (the item is handed back).
pub enum PushError<T> {
    /// The queue is at capacity.
    Full(T),
    /// The queue was closed — the server is shutting down.
    Closed(T),
}

impl<T> Queue<T> {
    /// A queue admitting at most `capacity` items at once.
    pub fn new(capacity: usize) -> Queue<T> {
        Queue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            takers: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Admits `item`, or refuses immediately when full or closed.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        inner.items.push_back(item);
        drop(inner);
        self.takers.notify_one();
        Ok(())
    }

    /// Blocks for the next item. Returns `None` only once the queue is
    /// closed **and** drained.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.takers.wait(inner).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Closes the queue: future pushes fail, poppers drain then stop.
    pub fn close(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        inner.closed = true;
        drop(inner);
        self.takers.notify_all();
    }

    /// Items currently waiting.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .items
            .len()
    }

    /// True when nothing is waiting.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn bounded_push_and_fifo_pop() {
        let q = Queue::new(2);
        q.try_push(1).ok().unwrap();
        q.try_push(2).ok().unwrap();
        assert!(matches!(q.try_push(3), Err(PushError::Full(3))));
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).ok().unwrap();
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
    }

    #[test]
    fn close_drains_then_stops() {
        let q = Queue::new(8);
        q.try_push("a").ok().unwrap();
        q.try_push("b").ok().unwrap();
        q.close();
        assert!(matches!(q.try_push("c"), Err(PushError::Closed("c"))));
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), Some("b"));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocked_poppers_wake_on_close() {
        let q = Arc::new(Queue::<u32>::new(4));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || while q.pop().is_some() {})
            })
            .collect();
        for i in 0..10 {
            while matches!(q.try_push(i), Err(PushError::Full(_))) {
                std::thread::yield_now();
            }
        }
        q.close();
        for h in handles {
            h.join().unwrap();
        }
        assert!(q.is_empty());
    }
}
