//! The wire protocol: newline-delimited JSON frames.
//!
//! Every frame is one line of JSON, terminated by `\n`. Requests carry an
//! `"op"` discriminator and an optional `"id"` (any JSON value) which is
//! echoed back verbatim in the reply, so clients that pipeline requests
//! can match replies out of order — the worker pool does not promise to
//! answer one connection's requests in submission order.
//!
//! ```text
//! → {"id": 1, "op": "query", "doc": "shak", "q": "speech matching \"love\""}
//! ← {"id": 1, "ok": true, "op": "query", "hits": 42, "regions": [[0, 17], …]}
//! → {"id": 2, "op": "nonsense"}
//! ← {"id": 2, "ok": false, "error": {"code": "unknown_op", "message": "…"}}
//! ```
//!
//! The full request/response reference lives in DESIGN.md ("The serve
//! layer"); this module is the single source of truth for frame shapes —
//! both the server and [`crate::client`] go through it.

use tr_core::mutate::Edit;
use tr_core::{region, RegionSet};
use tr_obs::Json;

/// Machine-readable error codes carried in `error.code`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// The frame was not valid JSON.
    BadJson,
    /// The frame was JSON but missing/mistyping required fields.
    BadRequest,
    /// The `op` value is not one the server knows.
    UnknownOp,
    /// The `doc` value names no catalog document.
    UnknownDoc,
    /// The query itself failed (parse error, unknown region name…).
    Query,
    /// The admission queue was full — back off and retry.
    Rejected,
    /// The request sat past its deadline before a worker picked it up.
    Timeout,
    /// The frame exceeded the request-size limit.
    TooLarge,
    /// The server is draining and takes no new work.
    ShuttingDown,
    /// The request crashed the handler (a bug — but the connection and
    /// its neighbours survive it).
    Internal,
    /// An edit batch could not be applied (unknown region name, edit
    /// breaking the region hierarchy, bad offset).
    Mutate,
    /// The `watch` value names no standing query on this connection.
    UnknownWatch,
    /// A routed request could not be served in full: the backend(s)
    /// holding the document are unreachable even after a reconnect
    /// attempt. The router stays up and other documents keep working.
    Degraded,
}

impl ErrorCode {
    /// The stable string form carried on the wire.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadJson => "bad_json",
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::UnknownOp => "unknown_op",
            ErrorCode::UnknownDoc => "unknown_doc",
            ErrorCode::Query => "query_error",
            ErrorCode::Rejected => "rejected",
            ErrorCode::Timeout => "timeout",
            ErrorCode::TooLarge => "too_large",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::Internal => "internal",
            ErrorCode::Mutate => "mutate_error",
            ErrorCode::UnknownWatch => "unknown_watch",
            ErrorCode::Degraded => "degraded",
        }
    }
}

/// Default / maximum number of regions returned per query result.
pub const DEFAULT_REGION_LIMIT: usize = 1_000;
/// Hard cap a client-supplied `limit` is clamped to.
pub const MAX_REGION_LIMIT: usize = 10_000;

/// A parsed request: the echoed `id` plus the operation.
#[derive(Clone, Debug, PartialEq)]
pub struct Request {
    /// Client-chosen correlation value, echoed in the reply.
    pub id: Option<Json>,
    /// The operation to perform.
    pub body: RequestBody,
}

/// The operations the protocol knows.
#[derive(Clone, Debug, PartialEq)]
pub enum RequestBody {
    /// Liveness probe.
    Ping,
    /// List catalog documents.
    ListDocs,
    /// Server counters and uptime.
    Stats,
    /// Run one query against a document.
    Query {
        /// Catalog document name.
        doc: String,
        /// Query text.
        q: String,
        /// Region cap for the reply (clamped to [`MAX_REGION_LIMIT`]).
        limit: usize,
    },
    /// Run several queries as one shared-plan batch.
    Batch {
        /// Catalog document name.
        doc: String,
        /// Query texts.
        queries: Vec<String>,
        /// Region cap per result (clamped to [`MAX_REGION_LIMIT`]).
        limit: usize,
    },
    /// Explain how a query would run, without running it.
    Explain {
        /// Catalog document name.
        doc: String,
        /// Query text.
        q: String,
    },
    /// Define a view visible only to this connection's session.
    DefineView {
        /// Catalog document name.
        doc: String,
        /// View name.
        name: String,
        /// View definition (query text).
        def: String,
    },
    /// Apply an edit batch to a document, publishing a new generation.
    Mutate {
        /// Catalog document name.
        doc: String,
        /// The edits, applied in order, atomically.
        edits: Vec<Edit>,
    },
    /// Register a standing query: the reply carries its current result
    /// and a watch id; every later mutation that changes the result
    /// pushes an `{"ev":"watch"}` diff frame on this connection.
    Watch {
        /// Catalog document name.
        doc: String,
        /// Query text.
        q: String,
        /// Region cap for the baseline reply (clamped like `query`).
        limit: usize,
    },
    /// Cancel a standing query registered on this connection.
    Unwatch {
        /// The watch id from the `watch` reply.
        watch: u64,
    },
    /// Run one query restricted to result regions whose left endpoint
    /// falls in `[lo, hi)`. This is the router's scatter verb: the reply
    /// carries **every** matching region, uncapped, because it is a
    /// merge input for [`tr_core::RegionSet::concat`], not a display.
    ShardQuery {
        /// Catalog document name.
        doc: String,
        /// Query text.
        q: String,
        /// Inclusive lower bound on result left endpoints.
        lo: u32,
        /// Exclusive upper bound on result left endpoints (`u32::MAX`
        /// means unbounded).
        hi: u32,
    },
    /// Persist a document's current generation to a `.trx` v3 store,
    /// atomically (write-temp-then-rename).
    Save {
        /// Catalog document name.
        doc: String,
        /// Target path; defaults to the document's backing file with a
        /// `.trx` extension.
        path: Option<String>,
    },
}

impl RequestBody {
    /// The `op` string for this body (echoed in ok replies).
    pub fn op(&self) -> &'static str {
        match self {
            RequestBody::Ping => "ping",
            RequestBody::ListDocs => "list-docs",
            RequestBody::Stats => "stats",
            RequestBody::Query { .. } => "query",
            RequestBody::Batch { .. } => "batch",
            RequestBody::Explain { .. } => "explain",
            RequestBody::DefineView { .. } => "define-view",
            RequestBody::Mutate { .. } => "mutate",
            RequestBody::Watch { .. } => "watch",
            RequestBody::Unwatch { .. } => "unwatch",
            RequestBody::ShardQuery { .. } => "shard-query",
            RequestBody::Save { .. } => "save",
        }
    }
}

/// A request parse failure: the code + message to reply with, plus the
/// `id` if one could still be extracted (so the error is correlatable).
#[derive(Clone, Debug, PartialEq)]
pub struct RequestError {
    /// Echoed id, when the frame was JSON enough to carry one.
    pub id: Option<Json>,
    /// Error code for the reply.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

/// Parses one frame (a line, without the trailing newline).
pub fn parse_request(line: &str) -> Result<Request, RequestError> {
    let json = tr_obs::parse_json(line).map_err(|e| RequestError {
        id: None,
        code: ErrorCode::BadJson,
        message: e.to_string(),
    })?;
    let id = json.get("id").cloned();
    let fail = |code: ErrorCode, message: String| RequestError {
        id: id.clone(),
        code,
        message,
    };
    let str_field = |name: &str| -> Result<String, RequestError> {
        json.get(name)
            .and_then(Json::as_str)
            .map(str::to_owned)
            .ok_or_else(|| {
                fail(
                    ErrorCode::BadRequest,
                    format!("missing or non-string field {name:?}"),
                )
            })
    };
    let limit_field = || -> Result<usize, RequestError> {
        match json.get("limit") {
            None => Ok(DEFAULT_REGION_LIMIT),
            Some(v) => v
                .as_u64()
                .map(|n| (n as usize).min(MAX_REGION_LIMIT))
                .ok_or_else(|| {
                    fail(
                        ErrorCode::BadRequest,
                        "limit must be a non-negative integer".to_owned(),
                    )
                }),
        }
    };
    let op = json.get("op").and_then(Json::as_str).ok_or_else(|| {
        fail(
            ErrorCode::BadRequest,
            "missing or non-string field \"op\"".to_owned(),
        )
    })?;
    let body = match op {
        "ping" => RequestBody::Ping,
        "list-docs" => RequestBody::ListDocs,
        "stats" => RequestBody::Stats,
        "query" => RequestBody::Query {
            doc: str_field("doc")?,
            q: str_field("q")?,
            limit: limit_field()?,
        },
        "batch" => {
            let queries = json
                .get("queries")
                .and_then(Json::as_arr)
                .ok_or_else(|| {
                    fail(
                        ErrorCode::BadRequest,
                        "missing or non-array field \"queries\"".to_owned(),
                    )
                })?
                .iter()
                .map(|q| {
                    q.as_str().map(str::to_owned).ok_or_else(|| {
                        fail(
                            ErrorCode::BadRequest,
                            "\"queries\" entries must be strings".to_owned(),
                        )
                    })
                })
                .collect::<Result<Vec<_>, _>>()?;
            RequestBody::Batch {
                doc: str_field("doc")?,
                queries,
                limit: limit_field()?,
            }
        }
        "explain" => RequestBody::Explain {
            doc: str_field("doc")?,
            q: str_field("q")?,
        },
        "define-view" => RequestBody::DefineView {
            doc: str_field("doc")?,
            name: str_field("name")?,
            def: str_field("def")?,
        },
        "mutate" => {
            let edits_json = json.get("edits").and_then(Json::as_arr).ok_or_else(|| {
                fail(
                    ErrorCode::BadRequest,
                    "missing or non-array field \"edits\"".to_owned(),
                )
            })?;
            if edits_json.is_empty() {
                return Err(fail(
                    ErrorCode::BadRequest,
                    "\"edits\" must not be empty".to_owned(),
                ));
            }
            let edits = edits_json
                .iter()
                .map(|e| parse_edit(e).map_err(|m| fail(ErrorCode::BadRequest, m)))
                .collect::<Result<Vec<_>, _>>()?;
            RequestBody::Mutate {
                doc: str_field("doc")?,
                edits,
            }
        }
        "watch" => RequestBody::Watch {
            doc: str_field("doc")?,
            q: str_field("q")?,
            limit: limit_field()?,
        },
        "unwatch" => {
            let watch = json.get("watch").and_then(Json::as_u64).ok_or_else(|| {
                fail(
                    ErrorCode::BadRequest,
                    "missing or non-integer field \"watch\"".to_owned(),
                )
            })?;
            RequestBody::Unwatch { watch }
        }
        "shard-query" => {
            let pos_field = |name: &str, default: u32| -> Result<u32, RequestError> {
                match json.get(name) {
                    None => Ok(default),
                    Some(v) => v
                        .as_u64()
                        .filter(|&n| n <= u64::from(u32::MAX))
                        .map(|n| n as u32)
                        .ok_or_else(|| {
                            fail(
                                ErrorCode::BadRequest,
                                format!("field {name:?} must be a u32 position"),
                            )
                        }),
                }
            };
            let (lo, hi) = (pos_field("lo", 0)?, pos_field("hi", u32::MAX)?);
            if lo > hi {
                return Err(fail(
                    ErrorCode::BadRequest,
                    format!("shard window lo {lo} exceeds hi {hi}"),
                ));
            }
            RequestBody::ShardQuery {
                doc: str_field("doc")?,
                q: str_field("q")?,
                lo,
                hi,
            }
        }
        "save" => {
            let path = match json.get("path") {
                None => None,
                Some(v) => Some(v.as_str().map(str::to_owned).ok_or_else(|| {
                    fail(
                        ErrorCode::BadRequest,
                        "field \"path\" must be a string".to_owned(),
                    )
                })?),
            };
            RequestBody::Save {
                doc: str_field("doc")?,
                path,
            }
        }
        other => return Err(fail(ErrorCode::UnknownOp, format!("unknown op {other:?}"))),
    };
    Ok(Request { id, body })
}

/// Parses one edit object from a `mutate` request's `edits` array.
///
/// ```text
/// {"kind": "append",        "text": "…"}
/// {"kind": "splice",        "at": 10, "delete": 4, "insert": "…"}
/// {"kind": "add-region",    "name": "sec", "left": 5, "right": 9}
/// {"kind": "remove-region", "name": "sec", "left": 5, "right": 9}
/// ```
///
/// `delete` and `insert` default to `0` / `""`; positions must fit `u32`
/// and `left ≤ right`.
fn parse_edit(e: &Json) -> Result<Edit, String> {
    let pos = |name: &str, default: Option<u32>| -> Result<u32, String> {
        match e.get(name) {
            None => default.ok_or_else(|| format!("edit is missing field {name:?}")),
            Some(v) => v
                .as_u64()
                .filter(|&n| n <= u64::from(u32::MAX))
                .map(|n| n as u32)
                .ok_or_else(|| format!("edit field {name:?} must be a u32 position")),
        }
    };
    let text = |name: &str, required: bool| -> Result<String, String> {
        match e.get(name) {
            None if !required => Ok(String::new()),
            None => Err(format!("edit is missing field {name:?}")),
            Some(v) => v
                .as_str()
                .map(str::to_owned)
                .ok_or_else(|| format!("edit field {name:?} must be a string")),
        }
    };
    let named_region = || -> Result<(String, tr_core::Region), String> {
        let name = text("name", true)?;
        let (l, r) = (pos("left", None)?, pos("right", None)?);
        if l > r {
            return Err(format!("region left {l} exceeds right {r}"));
        }
        Ok((name, region(l, r)))
    };
    match e.get("kind").and_then(Json::as_str) {
        Some("append") => Ok(Edit::append(text("text", true)?)),
        Some("splice") => Ok(Edit::Splice {
            at: pos("at", None)?,
            delete: pos("delete", Some(0))?,
            insert: text("insert", false)?,
        }),
        Some("add-region") => {
            let (name, region) = named_region()?;
            Ok(Edit::AddRegion { name, region })
        }
        Some("remove-region") => {
            let (name, region) = named_region()?;
            Ok(Edit::RemoveRegion { name, region })
        }
        Some(other) => Err(format!("unknown edit kind {other:?}")),
        None => Err("edit is missing field \"kind\"".to_owned()),
    }
}

/// A watch diff event frame. Events are keyed by `"ev"` and carry **no**
/// `"id"`: the client library stashes unrecognized frames while matching
/// request replies, and retrieves events with `next_event`.
pub fn watch_event_frame(
    watch: u64,
    doc: &str,
    generation: u64,
    added: &RegionSet,
    removed: &RegionSet,
    hits: usize,
    coalesced: usize,
) -> String {
    let j = Json::obj()
        .with("ev", Json::from("watch"))
        .with("watch", Json::from(watch))
        .with("doc", Json::from(doc))
        .with("generation", Json::from(generation))
        .with("added", regions_json(added))
        .with("removed", regions_json(removed))
        .with("hits", Json::from(hits))
        .with("coalesced", Json::from(coalesced));
    format!("{j}\n")
}

/// The slow-consumer shed notice: `dropped` queued diffs were discarded;
/// the client must re-run its query to resynchronize.
pub fn watch_lagged_frame(watch: u64, doc: &str, generation: u64, dropped: usize) -> String {
    let j = Json::obj()
        .with("ev", Json::from("watch-lagged"))
        .with("watch", Json::from(watch))
        .with("doc", Json::from(doc))
        .with("generation", Json::from(generation))
        .with("dropped", Json::from(dropped));
    format!("{j}\n")
}

/// A standing query became unanswerable (its view or engine rejected the
/// re-run); the watch is cancelled server-side.
pub fn watch_error_frame(watch: u64, doc: &str, message: &str) -> String {
    let j = Json::obj()
        .with("ev", Json::from("watch-error"))
        .with("watch", Json::from(watch))
        .with("doc", Json::from(doc))
        .with("message", Json::from(message));
    format!("{j}\n")
}

/// Every region of a set as `[[l, r], …]`, straight off the columns.
fn regions_json(set: &RegionSet) -> Json {
    Json::Arr(
        set.lefts()
            .iter()
            .zip(set.rights())
            .map(|(&l, &r)| Json::Arr(vec![Json::from(u64::from(l)), Json::from(u64::from(r))]))
            .collect(),
    )
}

/// An ok reply frame: `{"id": …, "ok": true, "op": …, <fields>}`.
pub fn ok_frame(id: Option<&Json>, op: &str, fields: Json) -> String {
    let mut j = Json::obj();
    if let Some(id) = id {
        j.set("id", id.clone());
    }
    j.set("ok", Json::Bool(true));
    j.set("op", Json::from(op));
    if let Json::Obj(pairs) = fields {
        for (k, v) in pairs {
            j.set(&k, v);
        }
    }
    format!("{j}\n")
}

/// An error reply frame: `{"id": …, "ok": false, "error": {…}}`.
pub fn err_frame(id: Option<&Json>, code: ErrorCode, message: &str) -> String {
    let mut j = Json::obj();
    if let Some(id) = id {
        j.set("id", id.clone());
    }
    j.set("ok", Json::Bool(false));
    j.set(
        "error",
        Json::obj()
            .with("code", Json::from(code.as_str()))
            .with("message", Json::from(message)),
    );
    format!("{j}\n")
}

/// A query result as reply fields: total hit count plus up to `limit`
/// `[left, right]` pairs (and a `truncated` marker when capped).
pub fn result_fields(hits: &RegionSet, limit: usize) -> Json {
    // Serialize straight off the columnar storage (no Region values are
    // materialized for the shipped prefix).
    let n = hits.len().min(limit);
    let regions: Vec<Json> = hits.lefts()[..n]
        .iter()
        .zip(&hits.rights()[..n])
        .map(|(&l, &r)| Json::Arr(vec![Json::from(u64::from(l)), Json::from(u64::from(r))]))
        .collect();
    let mut j = Json::obj()
        .with("hits", Json::from(hits.len()))
        .with("regions", Json::Arr(regions));
    if hits.len() > limit {
        j.set("truncated", Json::Bool(true));
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_op() {
        let cases = [
            (r#"{"op":"ping"}"#, "ping"),
            (r#"{"op":"list-docs"}"#, "list-docs"),
            (r#"{"op":"stats"}"#, "stats"),
            (r#"{"op":"query","doc":"d","q":"sec"}"#, "query"),
            (r#"{"op":"batch","doc":"d","queries":["a","b"]}"#, "batch"),
            (r#"{"op":"explain","doc":"d","q":"sec"}"#, "explain"),
            (
                r#"{"op":"define-view","doc":"d","name":"v","def":"sec"}"#,
                "define-view",
            ),
            (
                r#"{"op":"mutate","doc":"d","edits":[{"kind":"append","text":"x"}]}"#,
                "mutate",
            ),
            (r#"{"op":"watch","doc":"d","q":"sec"}"#, "watch"),
            (r#"{"op":"unwatch","watch":3}"#, "unwatch"),
            (
                r#"{"op":"shard-query","doc":"d","q":"sec","lo":0,"hi":50}"#,
                "shard-query",
            ),
            (r#"{"op":"save","doc":"d"}"#, "save"),
        ];
        for (line, op) in cases {
            let req = parse_request(line).unwrap();
            assert_eq!(req.body.op(), op, "{line}");
        }
    }

    #[test]
    fn id_is_preserved_even_on_errors() {
        let req = parse_request(r#"{"id": 7, "op": "ping"}"#).unwrap();
        assert_eq!(req.id, Some(Json::from(7u64)));
        let err = parse_request(r#"{"id": "abc", "op": "query"}"#).unwrap_err();
        assert_eq!(err.id, Some(Json::from("abc")));
        assert_eq!(err.code, ErrorCode::BadRequest);
        // Not JSON at all: no id to recover.
        let err = parse_request("garbage{{{").unwrap_err();
        assert_eq!(err.id, None);
        assert_eq!(err.code, ErrorCode::BadJson);
    }

    #[test]
    fn limit_is_clamped_and_validated() {
        let req = parse_request(r#"{"op":"query","doc":"d","q":"x","limit":999999}"#).unwrap();
        match req.body {
            RequestBody::Query { limit, .. } => assert_eq!(limit, MAX_REGION_LIMIT),
            other => panic!("{other:?}"),
        }
        let req = parse_request(r#"{"op":"query","doc":"d","q":"x"}"#).unwrap();
        match req.body {
            RequestBody::Query { limit, .. } => assert_eq!(limit, DEFAULT_REGION_LIMIT),
            other => panic!("{other:?}"),
        }
        assert!(parse_request(r#"{"op":"query","doc":"d","q":"x","limit":-2}"#).is_err());
    }

    #[test]
    fn frames_are_single_lines_and_round_trip() {
        let id = Json::from(3u64);
        let ok = ok_frame(
            Some(&id),
            "ping",
            Json::obj().with("pong", Json::Bool(true)),
        );
        assert!(ok.ends_with('\n') && !ok.trim_end().contains('\n'));
        let parsed = tr_obs::parse_json(ok.trim_end()).unwrap();
        assert_eq!(parsed.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(parsed.get("id").unwrap().as_u64(), Some(3));
        let err = err_frame(None, ErrorCode::Rejected, "queue full");
        let parsed = tr_obs::parse_json(err.trim_end()).unwrap();
        assert_eq!(
            parsed.get("error").unwrap().get("code").unwrap().as_str(),
            Some("rejected")
        );
    }

    #[test]
    fn mutate_edits_parse_and_validate() {
        let req = parse_request(
            r#"{"op":"mutate","doc":"d","edits":[
                {"kind":"splice","at":4,"delete":2,"insert":"yy"},
                {"kind":"splice","at":9},
                {"kind":"add-region","name":"sec","left":1,"right":8},
                {"kind":"remove-region","name":"sec","left":1,"right":8},
                {"kind":"append","text":"tail"}]}"#
                .replace('\n', " ")
                .as_str(),
        )
        .unwrap();
        match req.body {
            RequestBody::Mutate { doc, edits } => {
                assert_eq!(doc, "d");
                assert_eq!(edits.len(), 5);
                assert_eq!(
                    edits[0],
                    Edit::Splice {
                        at: 4,
                        delete: 2,
                        insert: "yy".into()
                    }
                );
                // delete/insert default to a pure no-op splice.
                assert_eq!(
                    edits[1],
                    Edit::Splice {
                        at: 9,
                        delete: 0,
                        insert: String::new()
                    }
                );
                assert!(matches!(edits[2], Edit::AddRegion { .. }));
                assert!(matches!(edits[4], Edit::Splice { at: u32::MAX, .. }));
            }
            other => panic!("{other:?}"),
        }
        // Rejected shapes: empty batch, bad kind, inverted region, huge
        // positions, missing fields.
        for bad in [
            r#"{"op":"mutate","doc":"d","edits":[]}"#,
            r#"{"op":"mutate","doc":"d","edits":[{"kind":"teleport"}]}"#,
            r#"{"op":"mutate","doc":"d","edits":[{"kind":"add-region","name":"s","left":9,"right":2}]}"#,
            r#"{"op":"mutate","doc":"d","edits":[{"kind":"splice","at":5000000000}]}"#,
            r#"{"op":"mutate","doc":"d","edits":[{"kind":"append"}]}"#,
            r#"{"op":"mutate","doc":"d"}"#,
        ] {
            let err = parse_request(bad).unwrap_err();
            assert_eq!(err.code, ErrorCode::BadRequest, "{bad}");
        }
    }

    #[test]
    fn shard_query_windows_default_and_validate() {
        // Omitted bounds default to the whole position space.
        let req = parse_request(r#"{"op":"shard-query","doc":"d","q":"sec"}"#).unwrap();
        match req.body {
            RequestBody::ShardQuery { lo, hi, .. } => {
                assert_eq!(lo, 0);
                assert_eq!(hi, u32::MAX);
            }
            other => panic!("{other:?}"),
        }
        // Inverted or oversize windows are refused.
        for bad in [
            r#"{"op":"shard-query","doc":"d","q":"s","lo":9,"hi":3}"#,
            r#"{"op":"shard-query","doc":"d","q":"s","lo":5000000000}"#,
            r#"{"op":"shard-query","doc":"d","q":"s","lo":"x"}"#,
        ] {
            let err = parse_request(bad).unwrap_err();
            assert_eq!(err.code, ErrorCode::BadRequest, "{bad}");
        }
    }

    #[test]
    fn save_path_is_optional_but_typed() {
        let req = parse_request(r#"{"op":"save","doc":"d","path":"/tmp/out.trx"}"#).unwrap();
        match req.body {
            RequestBody::Save { doc, path } => {
                assert_eq!(doc, "d");
                assert_eq!(path.as_deref(), Some("/tmp/out.trx"));
            }
            other => panic!("{other:?}"),
        }
        let err = parse_request(r#"{"op":"save","doc":"d","path":7}"#).unwrap_err();
        assert_eq!(err.code, ErrorCode::BadRequest);
    }

    #[test]
    fn event_frames_have_ev_and_no_id() {
        let added = RegionSet::from_regions(vec![tr_core::region(3, 7)]);
        let removed = RegionSet::from_regions(vec![]);
        let frame = watch_event_frame(5, "d", 2, &added, &removed, 4, 3);
        assert!(frame.ends_with('\n'));
        let j = tr_obs::parse_json(frame.trim_end()).unwrap();
        assert_eq!(j.get("ev").unwrap().as_str(), Some("watch"));
        assert!(j.get("id").is_none(), "events must not carry an id");
        assert_eq!(j.get("watch").unwrap().as_u64(), Some(5));
        assert_eq!(j.get("generation").unwrap().as_u64(), Some(2));
        assert_eq!(j.get("added").unwrap().as_arr().unwrap().len(), 1);
        assert_eq!(j.get("removed").unwrap().as_arr().unwrap().len(), 0);
        assert_eq!(j.get("coalesced").unwrap().as_u64(), Some(3));
        let lag = watch_lagged_frame(5, "d", 9, 12);
        let j = tr_obs::parse_json(lag.trim_end()).unwrap();
        assert_eq!(j.get("ev").unwrap().as_str(), Some("watch-lagged"));
        assert_eq!(j.get("dropped").unwrap().as_u64(), Some(12));
    }

    #[test]
    fn result_fields_cap_regions() {
        let set = RegionSet::from_regions((0..10).map(|i| tr_core::region(i * 2, i * 2)).collect());
        let j = result_fields(&set, 4);
        assert_eq!(j.get("hits").unwrap().as_u64(), Some(10));
        assert_eq!(j.get("regions").unwrap().as_arr().unwrap().len(), 4);
        assert_eq!(j.get("truncated"), Some(&Json::Bool(true)));
        let j = result_fields(&set, 100);
        assert_eq!(j.get("regions").unwrap().as_arr().unwrap().len(), 10);
        assert!(j.get("truncated").is_none());
    }
}
