//! Standing queries: the watch registry and its notifier thread.
//!
//! A `watch` request registers a query whose result the client wants to
//! track across mutations. The registry stores, per watcher, the query,
//! the session-view snapshot it resolves under, the last delivered
//! result, and a **bounded** queue of pending event frames.
//!
//! The flow on `mutate` (under the document's mutation lock, so diffs
//! for one document never interleave):
//!
//! 1. the worker swaps the new engine generation into the catalog;
//! 2. `WatchRegistry::notify` re-runs every standing query for that
//!    document against the new generation, diffs against the watcher's
//!    last result, and enqueues a diff frame when anything changed;
//! 3. a dedicated **notifier thread** drains the queues and writes the
//!    frames — so a slow client's TCP backpressure can never stall the
//!    mutating worker (or any other watcher).
//!
//! **Slow-consumer shedding**: a watcher whose queue is full has its
//! pending diffs discarded and replaced by a single structured
//! `watch-lagged` frame carrying the drop count — bounded memory, and an
//! explicit signal that the client must re-run its query to resync. The
//! watcher stays registered and keeps receiving future diffs.
//!
//! **Coalescing**: with a nonzero coalesce window (`--watch-coalesce-ms`
//! on the CLI), each watcher receives at most one diff frame per window.
//! The first result-changing mutation after a quiet period is delivered
//! immediately (leading edge); further changes inside the window are
//! *merged* — the notifier wakes at the window deadline and emits a
//! single diff from the last delivered result to the current one, whose
//! `coalesced` field counts the mutation batches it folded together.
//! Changes that cancel out inside a window (add then remove) produce no
//! frame at all. A zero window (the default) delivers every diff, each
//! with `coalesced: 1`.
//!
//! **Drain**: connection teardown unregisters that connection's
//! watchers; server shutdown closes the registry, and the notifier
//! flushes every still-pending merged diff and queued frame before
//! exiting.
//!
//! Counter taxonomy (`watch.*`): `watch.registered`,
//! `watch.unregistered`, `watch.events` (frames written),
//! `watch.coalesced` (result-changing mutations merged into a later
//! frame instead of delivered on their own), `watch.lagged` (shed
//! episodes), `watch.dropped_events` (frames discarded by sheds).

use crate::protocol;
use crate::server::ConnWriter;
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};
use tr_core::RegionSet;
use tr_query::{Engine, ResultDiff, SessionViews};

/// `watch.*` counter handles (see the module docs for the taxonomy).
struct WatchMetrics {
    registered: Arc<tr_obs::Counter>,
    unregistered: Arc<tr_obs::Counter>,
    events: Arc<tr_obs::Counter>,
    coalesced: Arc<tr_obs::Counter>,
    lagged: Arc<tr_obs::Counter>,
    dropped_events: Arc<tr_obs::Counter>,
}

impl WatchMetrics {
    fn get() -> &'static WatchMetrics {
        static METRICS: OnceLock<WatchMetrics> = OnceLock::new();
        METRICS.get_or_init(|| WatchMetrics {
            registered: tr_obs::counter("watch.registered"),
            unregistered: tr_obs::counter("watch.unregistered"),
            events: tr_obs::counter("watch.events"),
            coalesced: tr_obs::counter("watch.coalesced"),
            lagged: tr_obs::counter("watch.lagged"),
            dropped_events: tr_obs::counter("watch.dropped_events"),
        })
    }
}

/// One standing query.
struct Watcher {
    /// Owning connection (watches die with their connection).
    conn: u64,
    /// Document the query runs against.
    doc: String,
    /// The query text, re-run on every mutation of `doc`.
    query: String,
    /// Session views snapshotted at registration — the standing query
    /// keeps resolving against them even if the session redefines views
    /// later (a new `watch` picks the new snapshot up).
    views: Arc<SessionViews>,
    /// Where event frames go.
    writer: Arc<ConnWriter>,
    /// The newest computed result for this query — updated on every
    /// notify, even when delivery is deferred by a coalescing window.
    last: RegionSet,
    /// The result the last *enqueued* frame brought the client to;
    /// merged diffs are computed against it.
    delivered: RegionSet,
    /// Result-changing mutation batches deferred into the open window
    /// (0 = nothing pending).
    merged: usize,
    /// End of the open coalescing window: no further frame may be
    /// enqueued for this watcher before it. `None` = no window open.
    due: Option<Instant>,
    /// The engine generation of `last`, stamped on deferred-flush frames.
    generation: u64,
    /// Pending event frames, bounded by the registry's capacity.
    queue: VecDeque<String>,
}

/// The shared registry of standing queries. One per server.
pub(crate) struct WatchRegistry {
    inner: Mutex<Inner>,
    /// Wakes the notifier when events are queued or the registry closes.
    wake: Condvar,
    /// Per-watcher pending-frame cap; overflow sheds (see module docs).
    capacity: usize,
    /// Minimum spacing between diff frames per watcher; zero disables
    /// coalescing.
    coalesce: Duration,
}

struct Inner {
    watchers: HashMap<u64, Watcher>,
    next_id: u64,
    closed: bool,
}

impl WatchRegistry {
    pub(crate) fn new(capacity: usize, coalesce: Duration) -> WatchRegistry {
        WatchRegistry {
            inner: Mutex::new(Inner {
                watchers: HashMap::new(),
                next_id: 0,
                closed: false,
            }),
            wake: Condvar::new(),
            capacity: capacity.max(2),
            coalesce,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Registers a standing query and returns its watch id. `last` is
    /// the baseline result the registration reply reported — the first
    /// diff is computed against exactly what the client saw.
    pub(crate) fn register(
        &self,
        conn: u64,
        doc: &str,
        query: &str,
        views: Arc<SessionViews>,
        writer: Arc<ConnWriter>,
        last: RegionSet,
    ) -> u64 {
        let mut inner = self.lock();
        inner.next_id += 1;
        let id = inner.next_id;
        inner.watchers.insert(
            id,
            Watcher {
                conn,
                doc: doc.to_owned(),
                query: query.to_owned(),
                views,
                writer,
                delivered: last.clone(),
                last,
                merged: 0,
                due: None,
                generation: 0,
                queue: VecDeque::new(),
            },
        );
        WatchMetrics::get().registered.inc();
        id
    }

    /// Cancels watch `id` if it belongs to connection `conn`. Pending
    /// events for it are discarded.
    pub(crate) fn unregister(&self, conn: u64, id: u64) -> bool {
        let mut inner = self.lock();
        match inner.watchers.get(&id) {
            Some(w) if w.conn == conn => {
                inner.watchers.remove(&id);
                WatchMetrics::get().unregistered.inc();
                true
            }
            _ => false,
        }
    }

    /// Drops every watch owned by `conn` (connection teardown).
    pub(crate) fn unregister_conn(&self, conn: u64) {
        let mut inner = self.lock();
        let before = inner.watchers.len();
        inner.watchers.retain(|_, w| w.conn != conn);
        let removed = before - inner.watchers.len();
        WatchMetrics::get().unregistered.add(removed as u64);
    }

    /// Standing queries currently registered (tests, stats).
    pub(crate) fn len(&self) -> usize {
        self.lock().watchers.len()
    }

    /// Re-runs every standing query on `doc` against the new engine
    /// generation and enqueues diff frames (or defers them into the
    /// watcher's open coalescing window). Called by the mutating worker
    /// while it still holds the document's mutation lock.
    pub(crate) fn notify(&self, doc: &str, engine: &Engine) {
        let m = WatchMetrics::get();
        let now = Instant::now();
        let mut inner = self.lock();
        let capacity = self.capacity;
        let coalesce = self.coalesce;
        let mut errored: Vec<u64> = Vec::new();
        let mut queued = false;
        for (&id, w) in inner.watchers.iter_mut() {
            if w.doc != doc {
                continue;
            }
            let new = match engine.query_with(&w.views, &w.query) {
                Ok(new) => new,
                Err(e) => {
                    // The standing query no longer runs (cannot happen
                    // through the protocol today — the schema is fixed —
                    // but defense in depth): tell the client, cancel it.
                    w.queue.clear();
                    w.writer
                        .send(&protocol::watch_error_frame(id, doc, &e.to_string()));
                    errored.push(id);
                    continue;
                }
            };
            if new == w.last {
                continue; // this mutation didn't change the result
            }
            w.last = new;
            w.generation = engine.generation();
            if let Some(due) = w.due {
                if now < due {
                    // Inside an open window: merge. The notifier wakes at
                    // the deadline and emits one combined diff.
                    w.merged += 1;
                    m.coalesced.inc();
                    queued = true; // wake the notifier to arm its timer
                    continue;
                }
            }
            // Leading edge (or lapsed window): deliver now, counting any
            // deferred batches a lapsed window left behind.
            let merged = w.merged + 1;
            w.merged = 0;
            let diff = ResultDiff::between(&w.delivered, &w.last);
            if diff.is_empty() {
                // Net no-op vs what the client last saw (changes inside
                // the lapsed window cancelled out).
                w.due = None;
                continue;
            }
            enqueue_or_shed(w, id, &diff, merged, capacity, m);
            w.due = (!coalesce.is_zero()).then(|| now + coalesce);
            queued = true;
        }
        for id in errored {
            inner.watchers.remove(&id);
            m.unregistered.inc();
        }
        drop(inner);
        if queued {
            self.wake.notify_all();
        }
    }

    /// Flushes every watcher whose coalescing window has expired (all of
    /// them when `force` is set — the shutdown path): one merged diff
    /// frame per watcher with deferred changes. Returns true when
    /// anything was enqueued. Caller holds the registry lock.
    fn flush_windows(&self, inner: &mut Inner, m: &WatchMetrics, force: bool) -> bool {
        let now = Instant::now();
        let mut queued = false;
        for (&id, w) in inner.watchers.iter_mut() {
            let Some(due) = w.due else { continue };
            if now < due && !force {
                continue;
            }
            if w.merged == 0 {
                // The window lapsed quietly; the next change is a fresh
                // leading edge.
                w.due = None;
                continue;
            }
            let merged = w.merged;
            w.merged = 0;
            let diff = ResultDiff::between(&w.delivered, &w.last);
            if diff.is_empty() {
                w.due = None;
                continue; // deferred changes cancelled out
            }
            enqueue_or_shed(w, id, &diff, merged, self.capacity, m);
            // A frame went out: the rate limit re-arms (unless forced —
            // the registry is shutting down anyway).
            w.due = (!force && !self.coalesce.is_zero()).then(|| now + self.coalesce);
            queued = true;
        }
        queued
    }

    /// Closes the registry: the notifier flushes what is queued, then
    /// exits; remaining watchers are unregistered.
    pub(crate) fn close(&self) {
        let mut inner = self.lock();
        inner.closed = true;
        drop(inner);
        self.wake.notify_all();
    }

    /// The notifier thread body: flush expired coalescing windows, then
    /// pop one queued frame at a time (FIFO per watcher) and write it
    /// outside the lock, so one slow socket never blocks the registry.
    /// Sleeps until the next window deadline when diffs are deferred.
    /// Exits once the registry is closed *and* every queue is flushed
    /// (pending merged diffs are force-flushed first), then unregisters
    /// the leftovers.
    pub(crate) fn notifier_loop(&self) {
        let m = WatchMetrics::get();
        loop {
            let work: Option<(Arc<ConnWriter>, String)> = {
                let mut inner = self.lock();
                loop {
                    let force = inner.closed;
                    self.flush_windows(&mut inner, m, force);
                    let next = inner
                        .watchers
                        .values_mut()
                        .find(|w| !w.queue.is_empty())
                        .map(|w| (Arc::clone(&w.writer), w.queue.pop_front().unwrap()));
                    if let Some(found) = next {
                        break Some(found);
                    }
                    if inner.closed {
                        break None;
                    }
                    // Deferred merges set a deadline; sleep only until the
                    // earliest one, otherwise until woken.
                    let next_due = inner
                        .watchers
                        .values()
                        .filter(|w| w.merged > 0)
                        .filter_map(|w| w.due)
                        .min();
                    inner = match next_due {
                        Some(t) => {
                            let wait = t.saturating_duration_since(Instant::now());
                            self.wake
                                .wait_timeout(inner, wait)
                                .unwrap_or_else(|p| p.into_inner())
                                .0
                        }
                        None => self.wake.wait(inner).unwrap_or_else(|p| p.into_inner()),
                    };
                }
            };
            match work {
                Some((writer, frame)) => {
                    if let Some(stall) = test_stall() {
                        std::thread::sleep(stall);
                    }
                    writer.send(&frame);
                    m.events.inc();
                }
                None => break,
            }
        }
        let mut inner = self.lock();
        let leftover = inner.watchers.len();
        inner.watchers.clear();
        m.unregistered.add(leftover as u64);
    }
}

/// Queues a diff frame for `w` (or sheds its backlog into one lagged
/// notice when the queue is full) and advances the delivered baseline.
/// `merged` is the number of result-changing mutation batches the diff
/// folds together (1 = uncoalesced).
fn enqueue_or_shed(
    w: &mut Watcher,
    id: u64,
    diff: &ResultDiff,
    merged: usize,
    capacity: usize,
    m: &WatchMetrics,
) {
    let frame = protocol::watch_event_frame(
        id,
        &w.doc,
        w.generation,
        &diff.added,
        &diff.removed,
        w.last.len(),
        merged,
    );
    if w.queue.len() + 1 >= capacity {
        // Shed: every pending diff (and this one) is replaced by one
        // lagged notice. `delivered` advances to the true current result
        // so post-resync diffs stay correct.
        let dropped = w.queue.len() + 1;
        w.queue.clear();
        m.lagged.inc();
        m.dropped_events.add(dropped as u64);
        w.queue.push_back(protocol::watch_lagged_frame(
            id,
            &w.doc,
            w.generation,
            dropped,
        ));
    } else {
        w.queue.push_back(frame);
    }
    w.delivered = w.last.clone();
}

/// Test-only per-event send stall, read once from
/// `TR_SERVE_TEST_WATCH_STALL_MS`. The shed integration test sets it to
/// make the notifier slower than the mutation rate, forcing a queue
/// overflow. `None` in every real deployment.
fn test_stall() -> Option<Duration> {
    static STALL: OnceLock<Option<Duration>> = OnceLock::new();
    *STALL.get_or_init(|| {
        std::env::var("TR_SERVE_TEST_WATCH_STALL_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .filter(|&ms| ms > 0)
            .map(Duration::from_millis)
    })
}
