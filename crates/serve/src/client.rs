//! A small blocking client for the tr-serve protocol.
//!
//! Used by the `trq connect` REPL and the integration tests; it speaks
//! exactly the frames [`crate::protocol`] defines. One request at a time
//! is the intended pattern, but [`Client::request`] tolerates out-of-order
//! replies (the server's worker pool makes no ordering promise) by
//! stashing frames whose `id` doesn't match until their turn comes.

use crate::protocol::ErrorCode;
use std::collections::VecDeque;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;
use tr_obs::Json;

/// What a request can fail with.
#[derive(Debug)]
pub enum ClientError {
    /// The connection broke.
    Io(io::Error),
    /// The server replied with a structured error frame.
    Server {
        /// The machine-readable `error.code`.
        code: String,
        /// The human-readable `error.message`.
        message: String,
    },
    /// The server sent something that is not a valid reply frame.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Server { code, message } => write!(f, "server error [{code}]: {message}"),
            ClientError::Protocol(why) => write!(f, "protocol violation: {why}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

impl ClientError {
    /// The server-side error code, when this is a server error.
    pub fn code(&self) -> Option<&str> {
        match self {
            ClientError::Server { code, .. } => Some(code),
            _ => None,
        }
    }

    /// True when the server refused admission (queue full) — the one
    /// error a well-behaved client retries after backing off.
    pub fn is_rejected(&self) -> bool {
        self.code() == Some(ErrorCode::Rejected.as_str())
    }
}

/// A blocking connection to a tr-serve server.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
    stashed: VecDeque<Json>,
}

impl Client {
    /// Connects to `addr`.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
            next_id: 0,
            stashed: VecDeque::new(),
        })
    }

    /// Caps how long [`Client::recv`] waits for a frame.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// Writes one raw line (the `\n` is appended). Escape hatch for
    /// tests that need to send malformed frames on purpose.
    pub fn send_raw(&mut self, line: &str) -> io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")
    }

    /// Reads the next reply frame, whatever its `id`.
    pub fn recv(&mut self) -> Result<Json, ClientError> {
        if let Some(j) = self.stashed.pop_front() {
            return Ok(j);
        }
        self.read_frame()
    }

    fn read_frame(&mut self) -> Result<Json, ClientError> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        tr_obs::parse_json(line.trim_end())
            .map_err(|e| ClientError::Protocol(format!("unparseable reply: {e}")))
    }

    /// Sends `fields` as a request frame (an `"id"` is added), waits for
    /// the reply with that id, and converts error frames to
    /// [`ClientError::Server`].
    pub fn request(&mut self, op: &str, fields: Json) -> Result<Json, ClientError> {
        self.next_id += 1;
        let id = self.next_id;
        let mut frame = Json::obj()
            .with("id", Json::from(id))
            .with("op", Json::from(op));
        if let Json::Obj(pairs) = fields {
            for (k, v) in pairs {
                frame.set(&k, v);
            }
        }
        self.send_raw(&frame.to_string())?;
        loop {
            let reply = self.read_frame()?;
            if reply.get("id").and_then(Json::as_u64) == Some(id) {
                return check_ok(reply);
            }
            self.stashed.push_back(reply);
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.request("ping", Json::obj()).map(|_| ())
    }

    /// Names and sizes of the catalog documents.
    pub fn list_docs(&mut self) -> Result<Json, ClientError> {
        self.request("list-docs", Json::obj())
    }

    /// Server counters, uptime, queue depth.
    pub fn stats(&mut self) -> Result<Json, ClientError> {
        self.request("stats", Json::obj())
    }

    /// Runs `q` against `doc`; the reply carries `hits` and `regions`.
    pub fn query(&mut self, doc: &str, q: &str) -> Result<Json, ClientError> {
        self.request(
            "query",
            Json::obj()
                .with("doc", Json::from(doc))
                .with("q", Json::from(q)),
        )
    }

    /// Runs `queries` as one shared-plan batch against `doc`.
    pub fn batch(&mut self, doc: &str, queries: &[&str]) -> Result<Json, ClientError> {
        self.request(
            "batch",
            Json::obj().with("doc", Json::from(doc)).with(
                "queries",
                Json::Arr(queries.iter().copied().map(Json::from).collect()),
            ),
        )
    }

    /// Asks for `q`'s plan without running it.
    pub fn explain(&mut self, doc: &str, q: &str) -> Result<Json, ClientError> {
        self.request(
            "explain",
            Json::obj()
                .with("doc", Json::from(doc))
                .with("q", Json::from(q)),
        )
    }

    /// Defines a session-local view on `doc`.
    pub fn define_view(&mut self, doc: &str, name: &str, def: &str) -> Result<(), ClientError> {
        self.request(
            "define-view",
            Json::obj()
                .with("doc", Json::from(doc))
                .with("name", Json::from(name))
                .with("def", Json::from(def)),
        )
        .map(|_| ())
    }
}

/// Turns an error frame into [`ClientError::Server`].
fn check_ok(reply: Json) -> Result<Json, ClientError> {
    match reply.get("ok") {
        Some(Json::Bool(true)) => Ok(reply),
        Some(Json::Bool(false)) => {
            let err = reply.get("error");
            let field = |name: &str| {
                err.and_then(|e| e.get(name))
                    .and_then(Json::as_str)
                    .unwrap_or("?")
                    .to_owned()
            };
            Err(ClientError::Server {
                code: field("code"),
                message: field("message"),
            })
        }
        _ => Err(ClientError::Protocol("reply missing \"ok\"".to_owned())),
    }
}
