//! A small blocking client for the tr-serve protocol.
//!
//! Used by the `trq connect` REPL and the integration tests; it speaks
//! exactly the frames [`crate::protocol`] defines. One request at a time
//! is the intended pattern, but [`Client::request`] tolerates out-of-order
//! replies (the server's worker pool makes no ordering promise) by
//! stashing frames whose `id` doesn't match until their turn comes.

use crate::protocol::ErrorCode;
use std::collections::VecDeque;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};
use tr_obs::Json;

/// Client-side wall-clock timing of one request/reply exchange, both
/// measured from the moment the request (or [`Client::recv_timed`] call)
/// started: `first_byte` is when the first byte of the *matching* reply
/// line arrived, `total` when its newline did. The gap between them is
/// serialization + kernel buffering; the gap before `first_byte` is
/// queueing + execution — which is why the load harness records both.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReplyTiming {
    /// Delay until the reply's first byte.
    pub first_byte: Duration,
    /// Delay until the reply line was complete.
    pub total: Duration,
}

/// What a request can fail with.
#[derive(Debug)]
pub enum ClientError {
    /// The connection broke.
    Io(io::Error),
    /// The server replied with a structured error frame.
    Server {
        /// The machine-readable `error.code`.
        code: String,
        /// The human-readable `error.message`.
        message: String,
    },
    /// The server sent something that is not a valid reply frame.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Server { code, message } => write!(f, "server error [{code}]: {message}"),
            ClientError::Protocol(why) => write!(f, "protocol violation: {why}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

impl ClientError {
    /// The server-side error code, when this is a server error.
    pub fn code(&self) -> Option<&str> {
        match self {
            ClientError::Server { code, .. } => Some(code),
            _ => None,
        }
    }

    /// True when the server refused admission (queue full) — the one
    /// error a well-behaved client retries after backing off.
    pub fn is_rejected(&self) -> bool {
        self.code() == Some(ErrorCode::Rejected.as_str())
    }
}

/// A blocking connection to a tr-serve server.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
    stashed: VecDeque<Json>,
}

impl Client {
    /// Connects to `addr`.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
            next_id: 0,
            stashed: VecDeque::new(),
        })
    }

    /// Caps how long [`Client::recv`] waits for a frame.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// Writes one raw line (the `\n` is appended). Escape hatch for
    /// tests that need to send malformed frames on purpose.
    pub fn send_raw(&mut self, line: &str) -> io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")
    }

    /// Reads the next reply frame, whatever its `id`.
    pub fn recv(&mut self) -> Result<Json, ClientError> {
        self.recv_timed().map(|(j, _)| j)
    }

    /// [`Client::recv`] plus first-byte/total timing. A frame that was
    /// already stashed by an out-of-order [`Client::request`] reports
    /// zero delays — it had arrived before this call started.
    pub fn recv_timed(&mut self) -> Result<(Json, ReplyTiming), ClientError> {
        if let Some(j) = self.stashed.pop_front() {
            let zero = ReplyTiming {
                first_byte: Duration::ZERO,
                total: Duration::ZERO,
            };
            return Ok((j, zero));
        }
        self.read_frame_timed(Instant::now())
    }

    /// Blocks for one reply line, timestamping its first byte and its
    /// completion relative to `start`.
    fn read_frame_timed(&mut self, start: Instant) -> Result<(Json, ReplyTiming), ClientError> {
        let mut first = [0u8; 1];
        self.reader.read_exact(&mut first).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                ClientError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ))
            } else {
                ClientError::Io(e)
            }
        })?;
        let first_byte = start.elapsed();
        let mut buf = vec![first[0]];
        if first[0] != b'\n' {
            self.reader.read_until(b'\n', &mut buf)?;
        }
        let total = start.elapsed();
        if buf.last() == Some(&b'\n') {
            buf.pop();
        }
        let line = String::from_utf8_lossy(&buf);
        let json = tr_obs::parse_json(line.trim_end())
            .map_err(|e| ClientError::Protocol(format!("unparseable reply: {e}")))?;
        Ok((json, ReplyTiming { first_byte, total }))
    }

    /// Sends `fields` as a request frame (an `"id"` is added), waits for
    /// the reply with that id, and converts error frames to
    /// [`ClientError::Server`].
    pub fn request(&mut self, op: &str, fields: Json) -> Result<Json, ClientError> {
        self.request_timed(op, fields).map(|(j, _)| j)
    }

    /// [`Client::request`] plus client-side timing: `first_byte` and
    /// `total` measure from just before the frame was written, so they
    /// include serialization, the wire, admission queueing, and
    /// execution — the full client-observed latency the load harness
    /// (`tr-bencher`) records per request. Error frames still convert to
    /// [`ClientError::Server`]; their timing is discarded with the `Err`.
    pub fn request_timed(
        &mut self,
        op: &str,
        fields: Json,
    ) -> Result<(Json, ReplyTiming), ClientError> {
        self.next_id += 1;
        let id = self.next_id;
        let mut frame = Json::obj()
            .with("id", Json::from(id))
            .with("op", Json::from(op));
        if let Json::Obj(pairs) = fields {
            for (k, v) in pairs {
                frame.set(&k, v);
            }
        }
        let start = Instant::now();
        self.send_raw(&frame.to_string())?;
        loop {
            let (reply, timing) = self.read_frame_timed(start)?;
            if reply.get("id").and_then(Json::as_u64) == Some(id) {
                return check_ok(reply).map(|j| (j, timing));
            }
            self.stashed.push_back(reply);
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.request("ping", Json::obj()).map(|_| ())
    }

    /// Names and sizes of the catalog documents.
    pub fn list_docs(&mut self) -> Result<Json, ClientError> {
        self.request("list-docs", Json::obj())
    }

    /// Server counters, uptime, queue depth.
    pub fn stats(&mut self) -> Result<Json, ClientError> {
        self.request("stats", Json::obj())
    }

    /// Runs `q` against `doc`; the reply carries `hits` and `regions`.
    pub fn query(&mut self, doc: &str, q: &str) -> Result<Json, ClientError> {
        self.request(
            "query",
            Json::obj()
                .with("doc", Json::from(doc))
                .with("q", Json::from(q)),
        )
    }

    /// Runs `queries` as one shared-plan batch against `doc`.
    pub fn batch(&mut self, doc: &str, queries: &[&str]) -> Result<Json, ClientError> {
        self.request(
            "batch",
            Json::obj().with("doc", Json::from(doc)).with(
                "queries",
                Json::Arr(queries.iter().copied().map(Json::from).collect()),
            ),
        )
    }

    /// Runs `q` against `doc` restricted to result regions whose left
    /// endpoint falls in `[lo, hi)` (`u32::MAX` for unbounded). The reply
    /// carries *every* matching region, uncapped — shard replies are
    /// router merge inputs, not displays.
    pub fn shard_query(
        &mut self,
        doc: &str,
        q: &str,
        lo: u32,
        hi: u32,
    ) -> Result<Json, ClientError> {
        self.request(
            "shard-query",
            Json::obj()
                .with("doc", Json::from(doc))
                .with("q", Json::from(q))
                .with("lo", Json::from(u64::from(lo)))
                .with("hi", Json::from(u64::from(hi))),
        )
    }

    /// Persists `doc`'s current generation to a `.trx` store, atomically.
    /// Without `path` the server targets the document's backing file with
    /// a `.trx` extension.
    pub fn save(&mut self, doc: &str, path: Option<&str>) -> Result<Json, ClientError> {
        let mut fields = Json::obj().with("doc", Json::from(doc));
        if let Some(p) = path {
            fields.set("path", Json::from(p));
        }
        self.request("save", fields)
    }

    /// Asks for `q`'s plan without running it.
    pub fn explain(&mut self, doc: &str, q: &str) -> Result<Json, ClientError> {
        self.request(
            "explain",
            Json::obj()
                .with("doc", Json::from(doc))
                .with("q", Json::from(q)),
        )
    }

    /// Defines a session-local view on `doc`.
    pub fn define_view(&mut self, doc: &str, name: &str, def: &str) -> Result<(), ClientError> {
        self.request(
            "define-view",
            Json::obj()
                .with("doc", Json::from(doc))
                .with("name", Json::from(name))
                .with("def", Json::from(def)),
        )
        .map(|_| ())
    }

    /// Applies `edits` (an array of edit objects, see the protocol docs)
    /// to `doc`, atomically publishing a new engine generation. The reply
    /// carries `generation` and reindex/cache statistics.
    pub fn mutate(&mut self, doc: &str, edits: Json) -> Result<Json, ClientError> {
        self.request(
            "mutate",
            Json::obj()
                .with("doc", Json::from(doc))
                .with("edits", edits),
        )
    }

    /// Registers `q` as a standing query on `doc`. The reply carries the
    /// baseline result plus a `watch` id; subsequent mutations of `doc`
    /// deliver diff event frames, readable via [`Client::next_event`].
    pub fn watch(&mut self, doc: &str, q: &str) -> Result<Json, ClientError> {
        self.request(
            "watch",
            Json::obj()
                .with("doc", Json::from(doc))
                .with("q", Json::from(q)),
        )
    }

    /// Cancels a standing query by the id its `watch` reply reported.
    pub fn unwatch(&mut self, watch: u64) -> Result<(), ClientError> {
        self.request("unwatch", Json::obj().with("watch", Json::from(watch)))
            .map(|_| ())
    }

    /// Returns the next *event* frame (`watch`, `watch-lagged`, or
    /// `watch-error` — anything carrying `"ev"`), first from the stash of
    /// frames that arrived during requests, then from the wire. Non-event
    /// frames read along the way stay stashed in order.
    pub fn next_event(&mut self) -> Result<Json, ClientError> {
        if let Some(pos) = self.stashed.iter().position(|j| j.get("ev").is_some()) {
            return Ok(self.stashed.remove(pos).expect("position just found"));
        }
        loop {
            let (frame, _) = self.read_frame_timed(Instant::now())?;
            if frame.get("ev").is_some() {
                return Ok(frame);
            }
            self.stashed.push_back(frame);
        }
    }
}

/// Turns an error frame into [`ClientError::Server`].
fn check_ok(reply: Json) -> Result<Json, ClientError> {
    match reply.get("ok") {
        Some(Json::Bool(true)) => Ok(reply),
        Some(Json::Bool(false)) => {
            let err = reply.get("error");
            let field = |name: &str| {
                err.and_then(|e| e.get(name))
                    .and_then(Json::as_str)
                    .unwrap_or("?")
                    .to_owned()
            };
            Err(ClientError::Server {
                code: field("code"),
                message: field("message"),
            })
        }
        _ => Err(ClientError::Protocol("reply missing \"ok\"".to_owned())),
    }
}
