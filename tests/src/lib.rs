//! Host crate for the workspace-level integration tests in `tests/`.
//! The tests exercise cross-crate behaviour: algebra properties, the
//! paper's theorems, the end-to-end pipeline, and the optimizers.
