//! The shared-mapping catalog cache, end to end: N sessions and aliased
//! documents against one v3 `.trx` file must share a single mapping.
//! `store.mmap_opens` counts real mappings, so its delta is the proof —
//! this binary owns the strict assertions (its tests serialize on
//! [`lock`] and nothing else here maps files), while the crate-level
//! tests only pin the race-free `store.mmap_cache_hits` deltas.

use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Duration;
use tr_query::Engine;
use tr_serve::{Catalog, Client, Server, ServerConfig};

fn lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|p| p.into_inner())
}

const DOC: &str = "<d><s>alpha</s><s>beta gamma</s></d>";

/// A corpus with one persisted v3 store plus a symlinked alias of it —
/// two catalog documents, one file on disk.
fn corpus_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tr_mmap_cache_{}_{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let e = Engine::from_sgml(DOC).unwrap();
    tr_store::save_document(dir.join("shared.trx"), e.text(), e.instance(), e.rig()).unwrap();
    #[cfg(unix)]
    std::os::unix::fs::symlink(dir.join("shared.trx"), dir.join("alias.trx")).unwrap();
    dir
}

fn opens() -> u64 {
    tr_obs::counter_value("store.mmap_opens")
}

fn hits() -> u64 {
    tr_obs::counter_value("store.mmap_cache_hits")
}

/// Many sessions querying one v3 document (and its alias) cost exactly
/// one mapping: the first query forces the load, every later session —
/// and the aliased document — reuses it.
#[cfg(unix)]
#[test]
fn sessions_do_not_grow_mmap_opens() {
    let _guard = lock();
    let dir = corpus_dir("sessions");
    let catalog = Catalog::open(&dir).unwrap();
    assert_eq!(catalog.len(), 2, "store + alias");

    let (opens0, hits0) = (opens(), hits());
    let server = Server::start(catalog, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr();

    const SESSIONS: usize = 6;
    for _ in 0..SESSIONS {
        let mut client = Client::connect(addr).unwrap();
        client
            .set_read_timeout(Some(Duration::from_secs(20)))
            .unwrap();
        let reply = client.query("shared", r#"s matching "gamma""#).unwrap();
        assert_eq!(reply.get("hits").unwrap().as_u64(), Some(1));
    }
    assert_eq!(
        opens() - opens0,
        1,
        "one mapping across {SESSIONS} sessions"
    );
    assert_eq!(hits() - hits0, 0, "the alias has not been touched yet");

    // The aliased document resolves to the same file: a cache hit, not a
    // second mapping.
    let mut client = Client::connect(addr).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(20)))
        .unwrap();
    let reply = client.query("alias", r#"s matching "gamma""#).unwrap();
    assert_eq!(reply.get("hits").unwrap().as_u64(), Some(1));
    assert_eq!(opens() - opens0, 1, "alias must reuse the mapping");
    assert_eq!(hits() - hits0, 1);

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// Publishing a successor generation (the live-document path) keeps the
/// slot's mapping guard, so an alias loaded *after* a mutation still
/// finds the cache entry alive.
#[cfg(unix)]
#[test]
fn mutation_keeps_the_shared_mapping_alive() {
    let _guard = lock();
    let dir = corpus_dir("mutate");
    let catalog = Catalog::open(&dir).unwrap();

    let (opens0, hits0) = (opens(), hits());
    let old = catalog.get("shared").unwrap();
    assert_eq!(opens() - opens0, 1);

    let _guard_doc = catalog.lock_for_mutation("shared").unwrap();
    let (next, _) = old
        .apply_edits(&[tr_core::mutate::Edit::append(" tail")])
        .unwrap();
    assert!(catalog.swap("shared", std::sync::Arc::new(next)));

    // The alias forces its own deferred load now — same file, same
    // mapping, zero new opens.
    let alias = catalog.get("alias").unwrap();
    assert_eq!(alias.query(r#"s matching "gamma""#).unwrap().len(), 1);
    assert_eq!(opens() - opens0, 1, "post-swap alias load must not re-map");
    assert_eq!(hits() - hits0, 1);
    std::fs::remove_dir_all(&dir).ok();
}
