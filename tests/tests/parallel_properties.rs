//! Property tests for the plan-based parallel executor: on arbitrary
//! hierarchical instances and expression DAGs, `eval_parallel` agrees with
//! both `eval` (fast operators) and `eval_naive` (the literal Definition
//! 2.3 oracle), batch execution shares nodes without changing answers, and
//! parallel runs are deterministic.

use proptest::prelude::*;
use tr_core::{
    eval, eval_naive, eval_parallel_with, execute, region, BinOp, ExecConfig, Expr, Instance,
    NameId, Plan, Pos, Schema,
};

/// Strategy: a random hierarchical instance over names A/B with optional
/// occurrences of pattern "x" (same construction as algebra_properties).
fn instances() -> impl Strategy<Value = Instance> {
    proptest::collection::vec((0usize..8, 0usize..2, 1u32..30, any::<bool>()), 0..14).prop_map(
        |steps| {
            let schema = Schema::new(["A", "B"]);
            let mut b = tr_core::InstanceBuilder::new(schema);
            let mut spans: Vec<(Pos, Pos)> = vec![(0, 255)];
            for (slot, name, cut, occ) in steps {
                let (l, r) = spans[slot % spans.len()];
                if r - l < 4 {
                    continue;
                }
                let nl = l + 1 + cut % ((r - l) / 2);
                let nr = nl + (r - nl).min(cut);
                if nr > r - 1 {
                    continue;
                }
                b.push_id(NameId::from_index(name), region(nl, nr));
                spans.push((nl, nr));
                if occ {
                    b.push_occurrence("x", nl, 1);
                }
            }
            match b.build() {
                Ok(inst) => inst,
                Err(_) => tr_core::InstanceBuilder::new(Schema::new(["A", "B"])).build_valid(),
            }
        },
    )
}

/// Strategy: a random algebra expression over A/B and pattern "x".
fn exprs(max_ops: usize) -> impl Strategy<Value = Expr> {
    let leaf = (0usize..2).prop_map(|i| Expr::name(NameId::from_index(i)));
    leaf.prop_recursive(max_ops as u32, max_ops as u32 * 2, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), 0usize..7).prop_map(|(l, r, op)| Expr::bin(
                BinOp::ALL[op],
                l,
                r
            )),
            inner.prop_map(|e| e.select("x")),
        ]
    })
}

/// Aggressive settings: several scheduler workers, kernels split down to
/// single elements — maximal interleaving on any input size.
fn aggressive() -> ExecConfig {
    ExecConfig {
        threads: 4,
        kernel_cutoff: 1,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The oracle triangle: parallel == fast == naive on arbitrary inputs.
    #[test]
    fn parallel_matches_fast_and_naive(e in exprs(4), inst in instances()) {
        let par = eval_parallel_with(&e, &inst, &aggressive());
        prop_assert_eq!(&par, &eval(&e, &inst));
        prop_assert_eq!(&par, &eval_naive(&e, &inst));
    }

    /// Batch execution: sharing sub-expressions across queries changes
    /// node counts, never answers — and each distinct node runs once.
    #[test]
    fn batch_execution_matches_per_query_eval(
        batch in proptest::collection::vec(exprs(3), 1..6),
        inst in instances(),
    ) {
        let mut plan = Plan::new();
        let roots = plan.lower_batch(batch.iter());
        let out = execute(&plan, &inst, &aggressive());
        prop_assert_eq!(out.stats().nodes_evaluated, plan.len());
        for (root, e) in roots.iter().zip(&batch) {
            prop_assert_eq!(out.result(*root), &eval(e, &inst));
        }
    }

    /// Determinism: the same batch executed twice (and with different
    /// thread/cutoff settings) produces byte-identical results.
    #[test]
    fn parallel_execution_is_deterministic(
        batch in proptest::collection::vec(exprs(3), 1..5),
        inst in instances(),
    ) {
        let run = |cfg: &ExecConfig| {
            let mut plan = Plan::new();
            let roots = plan.lower_batch(batch.iter());
            execute(&plan, &inst, cfg).take(&roots)
        };
        let first = run(&aggressive());
        prop_assert_eq!(&first, &run(&aggressive()), "same config, same bytes");
        prop_assert_eq!(&first, &run(&ExecConfig::sequential()), "thread count is invisible");
        prop_assert_eq!(
            &first,
            &run(&ExecConfig { threads: 2, kernel_cutoff: 3 }),
            "cutoff is invisible"
        );
    }
}

/// A directed non-property case: a batch with heavy cross-query sharing
/// evaluates far fewer nodes than the sum of tree sizes, and re-running the
/// identical batch yields identical results (engine-level determinism).
#[test]
fn shared_batch_is_collapsed_and_deterministic() {
    let schema = Schema::new(["A", "B"]);
    let mut b = tr_core::InstanceBuilder::new(schema.clone());
    for i in 0..200u32 {
        b = b.add("A", region(i * 10, i * 10 + 8));
        b = b.add("B", region(i * 10 + 2, i * 10 + 5));
    }
    let inst = b.build_valid();
    let a = Expr::name(schema.expect_id("A"));
    let bb = Expr::name(schema.expect_id("B"));
    let shared = bb.clone().included_in(a.clone());
    let batch: Vec<Expr> = (0..8)
        .map(|i| match i % 4 {
            0 => shared.clone(),
            1 => shared.clone().union(a.clone().including(bb.clone())),
            2 => shared.clone().intersect(bb.clone()).select("x"),
            _ => shared
                .clone()
                .union(shared.clone().intersect(shared.clone())),
        })
        .collect();
    let mut plan = Plan::new();
    let roots = plan.lower_batch(batch.iter());
    let tree_sizes: usize = batch.iter().map(|e| e.num_ops() + e.names().len()).sum();
    assert!(
        plan.len() < tree_sizes / 2,
        "{} nodes vs {} tree ops",
        plan.len(),
        tree_sizes
    );
    let cfg = ExecConfig {
        threads: 4,
        kernel_cutoff: 8,
    };
    let out1 = execute(&plan, &inst, &cfg);
    assert_eq!(out1.stats().nodes_evaluated, plan.len());
    for (root, e) in roots.iter().zip(&batch) {
        assert_eq!(out1.result(*root), &eval(e, &inst));
    }
    let out2 = execute(&plan, &inst, &cfg);
    for root in &roots {
        assert_eq!(out1.result(*root), out2.result(*root));
    }
}
