//! Property tests for the core algebra: the fast operators agree with the
//! literal Definition 2.3 oracle, and the algebraic laws the paper's
//! optimizer relies on hold on arbitrary hierarchical instances.

use proptest::prelude::*;
use tr_core::{
    eval, eval_naive, naive, ops, region, BinOp, Expr, Instance, NameId, Pos, RegionSet, Schema,
};

/// Strategy: a random hierarchical instance over names A/B with optional
/// occurrences of pattern "x", built by recursive interval splitting (so
/// the hierarchy invariant holds by construction).
fn instances() -> impl Strategy<Value = Instance> {
    // Each element: (slot index, name choice, relative split, occurrence?)
    proptest::collection::vec((0usize..8, 0usize..2, 1u32..30, any::<bool>()), 0..14).prop_map(
        |steps| {
            let schema = Schema::new(["A", "B"]);
            let mut b = tr_core::InstanceBuilder::new(schema);
            let mut spans: Vec<(Pos, Pos)> = vec![(0, 255)];
            for (slot, name, cut, occ) in steps {
                let (l, r) = spans[slot % spans.len()];
                if r - l < 4 {
                    continue;
                }
                let nl = l + 1 + cut % ((r - l) / 2);
                let nr = nl + (r - nl).min(cut);
                if nr > r - 1 {
                    continue;
                }
                b.push_id(NameId::from_index(name), region(nl, nr));
                spans.push((nl, nr));
                if occ {
                    b.push_occurrence("x", nl, 1);
                }
            }
            match b.build() {
                Ok(inst) => inst,
                Err(_) => tr_core::InstanceBuilder::new(Schema::new(["A", "B"])).build_valid(),
            }
        },
    )
}

/// Strategy: a random algebra expression over A/B and pattern "x".
fn exprs(max_ops: usize) -> impl Strategy<Value = Expr> {
    let leaf = (0usize..2).prop_map(|i| Expr::name(NameId::from_index(i)));
    leaf.prop_recursive(max_ops as u32, max_ops as u32 * 2, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), 0usize..7).prop_map(|(l, r, op)| Expr::bin(
                BinOp::ALL[op],
                l,
                r
            )),
            inner.prop_map(|e| e.select("x")),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The engine's central correctness property: fast == naive.
    #[test]
    fn fast_evaluator_matches_naive(e in exprs(4), inst in instances()) {
        prop_assert_eq!(eval(&e, &inst), eval_naive(&e, &inst));
    }

    /// Structural semi-joins are restrictions of their left operand.
    #[test]
    fn semijoins_shrink_left(inst in instances()) {
        let a = inst.regions_of_name("A");
        let b = inst.regions_of_name("B");
        for f in [ops::includes, ops::included_in, ops::precedes, ops::follows] {
            prop_assert!(f(a, b).is_subset(a));
        }
    }

    /// Distribution over union on the left: (R ∪ S) op T = (R op T) ∪ (S op T).
    #[test]
    fn semijoins_distribute_over_left_union(inst in instances()) {
        let a = inst.regions_of_name("A");
        let b = inst.regions_of_name("B");
        let union = a.union(b);
        for f in [ops::includes, ops::included_in, ops::precedes, ops::follows] {
            prop_assert_eq!(f(&union, b), f(a, b).union(&f(b, b)));
        }
    }

    /// Monotonicity in the right operand: S ⊆ S' ⟹ R op S ⊆ R op S'.
    #[test]
    fn semijoins_monotone_in_right(inst in instances()) {
        let a = inst.regions_of_name("A");
        let b = inst.regions_of_name("B");
        let bigger = b.union(a);
        for f in [ops::includes, ops::included_in, ops::precedes, ops::follows] {
            prop_assert!(f(a, b).is_subset(&f(a, &bigger)));
        }
    }

    /// ⊃ and ⊂ are converse relations on singletons.
    #[test]
    fn inclusion_converse(inst in instances()) {
        let all = inst.all_regions();
        for r in all.iter() {
            for s in all.iter() {
                prop_assert_eq!(r.includes(s), s.included_in(r));
                // Inclusion and precedence are mutually exclusive.
                prop_assert!(!(r.includes(s) && (r.precedes(s) || s.precedes(r))));
            }
        }
    }

    /// Precedence is a strict partial order on the instance's regions.
    #[test]
    fn precedence_is_strict_partial_order(inst in instances()) {
        let all: Vec<_> = inst.all_regions().iter().collect();
        for &r in &all {
            prop_assert!(!r.precedes(r));
            for &s in &all {
                for &t in &all {
                    if r.precedes(s) && s.precedes(t) {
                        prop_assert!(r.precedes(t));
                    }
                }
            }
        }
    }

    /// Set-op laws used by the optimizer: idempotence, absorption, and
    /// the equivalence test's core identity (e − e) = ∅.
    #[test]
    fn set_operator_laws(inst in instances()) {
        let a = inst.regions_of_name("A");
        let b = inst.regions_of_name("B");
        prop_assert_eq!(a.union(a), a.clone());
        prop_assert_eq!(a.intersect(a), a.clone());
        prop_assert!(a.difference(a).is_empty());
        prop_assert_eq!(a.union(&a.intersect(b)), a.clone());
        prop_assert_eq!(a.intersect(&a.union(b)), a.clone());
        prop_assert_eq!(a.difference(b).union(&a.intersect(b)), a.clone());
    }

    /// Selection commutes with union and distributes into intersection.
    #[test]
    fn selection_laws(inst in instances()) {
        let a = Expr::name(NameId::from_index(0));
        let b = Expr::name(NameId::from_index(1));
        let lhs = eval(&a.clone().union(b.clone()).select("x"), &inst);
        let rhs = eval(&a.clone().select("x").union(b.clone().select("x")), &inst);
        prop_assert_eq!(lhs, rhs);
        let lhs = eval(&a.clone().intersect(b.clone()).select("x"), &inst);
        let rhs = eval(&a.select("x").intersect(b.select("x")), &inst);
        prop_assert_eq!(lhs, rhs);
    }

    /// Naive oracles agree with hand-rolled set builders (oracle sanity).
    #[test]
    fn naive_is_the_definition(inst in instances()) {
        let a = inst.regions_of_name("A");
        let b = inst.regions_of_name("B");
        let expect: RegionSet = a.filter(|x| b.iter().any(|y| x.includes(y)));
        prop_assert_eq!(naive::includes(a, b), expect);
    }
}
