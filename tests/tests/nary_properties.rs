//! Property tests for the Section 7 extension: the n-ary algebra embeds
//! the core algebra, and its derived operators match both the native
//! implementations and the query-language front-end.

use proptest::prelude::*;
use tr_core::{region, Instance, InstanceBuilder, NameId, Pos, Schema};
use tr_nary::{Atom, NExpr, StructRel};
use tr_query::Query;

fn schema() -> Schema {
    Schema::new(["A", "B", "C"])
}

/// Strategy: random hierarchical instances over A/B/C.
fn instances() -> impl Strategy<Value = Instance> {
    proptest::collection::vec((0usize..8, 0usize..3, 1u32..30), 0..12).prop_map(|steps| {
        let mut b = InstanceBuilder::new(schema());
        let mut spans: Vec<(Pos, Pos)> = vec![(0, 200)];
        for (slot, name, cut) in steps {
            let (l, r) = spans[slot % spans.len()];
            if r - l < 4 {
                continue;
            }
            let nl = l + 1 + cut % ((r - l) / 2);
            let nr = nl + (r - nl).min(cut);
            if nr > r - 1 {
                continue;
            }
            b.push_id(NameId::from_index(name), region(nl, nr));
            spans.push((nl, nr));
        }
        b.build()
            .unwrap_or_else(|_| InstanceBuilder::new(schema()).build_valid())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every core semi-join is the projection of an n-ary join.
    #[test]
    fn semijoins_embed(inst in instances()) {
        let s = schema();
        let (a, b) = (s.expect_id("A"), s.expect_id("B"));
        type CoreOp = fn(&tr_core::RegionSet, &tr_core::RegionSet) -> tr_core::RegionSet;
        let cases: [(StructRel, CoreOp); 4] = [
            (StructRel::Includes, tr_core::ops::includes),
            (StructRel::IncludedIn, tr_core::ops::included_in),
            (StructRel::Precedes, tr_core::ops::precedes),
            (StructRel::Follows, tr_core::ops::follows),
        ];
        for (rel, core_op) in cases {
            let nary = NExpr::name(a)
                .join(NExpr::name(b), vec![Atom::Cols { left: 0, rel, right: 1 }])
                .project(vec![0]);
            prop_assert_eq!(
                nary.eval(&inst).to_set(),
                core_op(inst.regions_of_name("A"), inst.regions_of_name("B"))
            );
        }
    }

    /// The three derived operators agree with tr-ext natives *and* with
    /// the query-language front-end on arbitrary instances.
    #[test]
    fn derived_operators_agree_everywhere(inst in instances()) {
        let s = schema();
        let (a, b, c) = (s.expect_id("A"), s.expect_id("B"), s.expect_id("C"));

        let via_nary = tr_nary::direct_including_expr(a, b).eval(&inst).to_set();
        let via_native =
            tr_ext::directly_including(&inst, inst.regions_of_name("A"), inst.regions_of_name("B"));
        let via_query = Query::DirectlyContaining(
            Box::new(Query::Name(a)),
            Box::new(Query::Name(b)),
        )
        .eval(&inst);
        prop_assert_eq!(&via_nary, &via_native);
        prop_assert_eq!(&via_query, &via_native);

        let bi_nary = tr_nary::both_included_expr(c, a, b).eval(&inst).to_set();
        let bi_native = tr_ext::both_included(
            inst.regions_of_name("C"),
            inst.regions_of_name("A"),
            inst.regions_of_name("B"),
        );
        let bi_query = Query::BothIncluded(
            Box::new(Query::Name(c)),
            Box::new(Query::Name(a)),
            Box::new(Query::Name(b)),
        )
        .eval(&inst);
        prop_assert_eq!(&bi_nary, &bi_native);
        prop_assert_eq!(&bi_query, &bi_native);
    }

    /// Projection after product recovers the factors (when the other side
    /// is non-empty) — on real instances, not just synthetic relations.
    #[test]
    fn product_projection_laws(inst in instances()) {
        let s = schema();
        let (a, b) = (s.expect_id("A"), s.expect_id("B"));
        let prod = NExpr::name(a).product(NExpr::name(b)).eval(&inst);
        let ra = NExpr::name(a).eval(&inst);
        let rb = NExpr::name(b).eval(&inst);
        prop_assert_eq!(prod.len(), ra.len() * rb.len());
        if !rb.is_empty() {
            prop_assert_eq!(prod.project(&[0]), ra.clone());
        }
        if !ra.is_empty() {
            prop_assert_eq!(prod.project(&[1]), rb);
        }
    }
}
