//! Fuzz-style property tests: the parsers that face untrusted input must
//! **never panic** — not on random bytes, not on near-miss token soup,
//! not on hostile nesting. tr-serve feeds network bytes straight into
//! both the query parser and the protocol frame parser, so "worst case is
//! an `Err`" is a load-bearing contract, not a nicety.

use proptest::collection;
use proptest::prelude::*;
use tr_core::Schema;

fn schema() -> Schema {
    Schema::new(["play", "act", "speech", "line", "w"])
}

/// Fragments that steer random input toward deep parser paths: real
/// keywords, region names, quotes, parens, operators, and junk.
fn tokens() -> proptest::BoxedStrategy<&'static str> {
    prop_oneof![
        Just("play"),
        Just("speech"),
        Just("w"),
        Just("nosuch"),
        Just("within"),
        Just("containing"),
        Just("not"),
        Just("union"),
        Just("intersect"),
        Just("matching"),
        Just("followed"),
        Just("by"),
        Just("("),
        Just(")"),
        Just("\""),
        Just("\"love\""),
        Just("\"unterminated"),
        Just(","),
        Just("¬"),
        Just("\\"),
        Just("\0"),
        Just("🦀"),
        Just("  "),
    ]
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary bytes (lossily decoded) through the query parser: any
    /// outcome but a panic is acceptable.
    #[test]
    fn query_parser_never_panics_on_raw_bytes(bytes in collection::vec(any::<u8>(), 0..200)) {
        let input = String::from_utf8_lossy(&bytes);
        let _ = tr_query::parse(&input, &schema());
    }

    /// Token soup — syntactically *almost* plausible queries — through
    /// the query parser.
    #[test]
    fn query_parser_never_panics_on_token_soup(parts in collection::vec(tokens(), 0..24)) {
        let input = parts.join(" ");
        let _ = tr_query::parse(&input, &schema());
        // And with no separating spaces, to fuzz the lexer's boundaries.
        let input = parts.concat();
        let _ = tr_query::parse(&input, &schema());
    }

    /// Arbitrary bytes through the serve protocol's frame parser.
    #[test]
    fn protocol_parser_never_panics_on_raw_bytes(bytes in collection::vec(any::<u8>(), 0..200)) {
        let input = String::from_utf8_lossy(&bytes);
        let _ = tr_serve::protocol::parse_request(&input);
    }

    /// JSON-shaped garbage through the frame parser: valid JSON envelope,
    /// hostile field values.
    #[test]
    fn protocol_parser_never_panics_on_json_shaped_garbage(
        op in collection::vec(any::<u8>(), 0..12),
        limit in any::<u64>(),
    ) {
        let op = String::from_utf8_lossy(&op).replace(['"', '\\'], "");
        let frame = format!(r#"{{"op":"{op}","doc":"d","q":"x","limit":{limit}}}"#);
        let _ = tr_serve::protocol::parse_request(&frame);
    }
}

/// Hostile nesting is rejected with an error, not a stack overflow —
/// the recursion depth limit holds at the workspace boundary too.
#[test]
fn hostile_nesting_errs_without_overflow() {
    let schema = schema();
    for n in [600usize, 5_000, 50_000] {
        let q = format!("{}w{}", "(".repeat(n), ")".repeat(n));
        assert!(tr_query::parse(&q, &schema).is_err(), "depth {n}");
        let chain = "w within ".repeat(n) + "w";
        assert!(tr_query::parse(&chain, &schema).is_err(), "chain {n}");
    }
}
