//! Integration tests for the optimization machinery: RIG chain rewrites,
//! the bounded-model equivalence checker, the cost-based optimizer, the
//! minimal-set solvers, and the Section 6 programs with pruned blockers.

use rand::prelude::*;
use tr_core::{eval, Expr, NameId};
use tr_ext::{direct_chain_program, direct_chain_program_filtered};
use tr_fmft::{optimize, Bounds, EmptinessChecker};
use tr_markup::{random_rig_instance, RigInstanceConfig};
use tr_rig::{min_vertex_cut, Chain, ChainDir, ChainItem, MinimalSetProblem, Rig};

/// Chain optimization w.r.t. Figure 1 is semantics-preserving on RIG
/// instances — for every ⊂-chain over the schema.
#[test]
fn chain_rewrites_preserve_semantics_on_rig_instances() {
    let rig = Rig::figure_1();
    let schema = rig.schema().clone();
    let mut rng = StdRng::seed_from_u64(5);
    let mut cfg = RigInstanceConfig::new(&schema, 120);
    cfg.roots = vec![schema.expect_id("Program")];
    cfg.max_depth = 10;

    // Random ⊂-chains of names that are plausible (each reachable from the
    // next), ending at Program.
    let mut checked = 0;
    for _ in 0..200 {
        let len = rng.gen_range(3..6);
        let mut names = vec![schema.expect_id("Program")];
        for _ in 1..len {
            let cur = *names.last().unwrap();
            let succs: Vec<NameId> = rig.successors(cur).collect();
            if succs.is_empty() {
                break;
            }
            names.push(succs[rng.gen_range(0..succs.len())]);
        }
        if names.len() < 3 {
            continue;
        }
        names.reverse(); // innermost first for a ⊂-chain
        let chain = Chain {
            dir: ChainDir::IncludedIn,
            items: names.into_iter().map(ChainItem::bare).collect(),
        };
        let optimized = chain.optimize(&rig);
        if optimized == chain {
            continue;
        }
        checked += 1;
        let e1 = chain.to_expr();
        let e2 = optimized.to_expr();
        for _ in 0..5 {
            let inst = random_rig_instance(&rig, &cfg, &mut rng);
            assert_eq!(
                eval(&e1, &inst),
                eval(&e2, &inst),
                "chain {} vs {}",
                e1.display(&schema),
                e2.display(&schema)
            );
        }
    }
    assert!(
        checked >= 10,
        "the sweep must exercise real rewrites (got {checked})"
    );
}

/// The chain optimizer's rewrites are confirmed equivalent by the
/// independent bounded-model checker (Theorem 3.6 route).
#[test]
fn chain_rewrites_confirmed_by_emptiness_checker() {
    let rig = Rig::figure_1();
    let schema = rig.schema().clone();
    let chain = Chain {
        dir: ChainDir::IncludedIn,
        items: ["Name", "Proc_header", "Proc", "Program"]
            .into_iter()
            .map(|n| ChainItem::bare(schema.expect_id(n)))
            .collect(),
    };
    let optimized = chain.optimize(&rig);
    assert_ne!(optimized, chain);
    let checker = EmptinessChecker::with_rig(
        rig.clone(),
        Bounds {
            max_nodes: 5,
            max_depth: 5,
        },
    );
    assert!(checker.equivalent(&chain.to_expr(), &optimized.to_expr()));
    // And the checker rejects a *wrong* rewrite (dropping Proc_header).
    let wrong = Chain {
        dir: ChainDir::IncludedIn,
        items: ["Name", "Program"]
            .into_iter()
            .map(|n| ChainItem::bare(schema.expect_id(n)))
            .collect(),
    };
    assert!(!checker.equivalent(&chain.to_expr(), &wrong.to_expr()));
}

/// The cost-based optimizer (Section 3's scheme) agrees with the chain
/// optimizer on the paper's example.
#[test]
fn cost_based_optimizer_matches_chain_optimizer() {
    let rig = Rig::figure_1();
    let schema = rig.schema().clone();
    let name = Expr::name(schema.expect_id("Name"));
    let hdr = Expr::name(schema.expect_id("Proc_header"));
    let prc = Expr::name(schema.expect_id("Proc"));
    let prg = Expr::name(schema.expect_id("Program"));
    let e1 = name.included_in(hdr.included_in(prc.included_in(prg)));
    let checker = EmptinessChecker::with_rig(
        rig.clone(),
        Bounds {
            max_nodes: 5,
            max_depth: 5,
        },
    );
    let via_pruning = optimize(&e1, &checker);
    let via_chain = Chain::from_expr(&e1).unwrap().optimize(&rig).to_expr();
    assert_eq!(via_pruning.num_ops(), via_chain.num_ops());
    assert!(checker.equivalent(&via_pruning, &via_chain));
}

/// Minimal-set machinery is internally consistent on random instances:
/// exact ≤ greedy, exact == min-cut for single pairs, all solutions cover.
#[test]
fn minimal_set_solvers_agree() {
    let mut rng = StdRng::seed_from_u64(11);
    for trial in 0..40 {
        let n = rng.gen_range(4..10);
        let names: Vec<String> = (0..n).map(|i| format!("N{i}")).collect();
        let schema = tr_core::Schema::new(names);
        let mut rig = Rig::new(schema.clone());
        for i in 0..n {
            for j in 0..n {
                if i != j && (i, j) != (0, n - 1) && rng.gen_bool(0.25) {
                    rig.0.add_edge(NameId::from_index(i), NameId::from_index(j));
                }
            }
        }
        let (u, v) = (NameId::from_index(0), NameId::from_index(n - 1));
        let p = MinimalSetProblem::for_chain(rig.clone(), &[u, v]);
        let exact = p.solve_exact().expect("always feasible");
        let greedy = p.solve_greedy().expect("feasible");
        let cut = min_vertex_cut(&rig, u, v);
        assert!(p.covers(&exact), "trial {trial}");
        assert!(p.covers(&greedy), "trial {trial}");
        assert!(p.covers(&cut), "trial {trial}");
        assert!(exact.len() <= greedy.len(), "trial {trial}");
        assert_eq!(exact.len(), cut.len(), "trial {trial}");
    }
}

/// Section 6 end-to-end: running the chain program with the blocker set
/// pruned to a *valid* interception set gives the same answer as the full
/// set, on RIG-conforming instances.
#[test]
fn pruned_chain_program_is_sound_on_rig_instances() {
    let rig = Rig::figure_1();
    let schema = rig.schema().clone();
    let chain = vec![
        schema.expect_id("Program"),
        schema.expect_id("Proc"),
        schema.expect_id("Var"),
    ];
    // Interception sets: between Program and Proc every path passes
    // Prog_body; between Proc and Var every path passes Proc_body.
    let p = MinimalSetProblem::for_chain(rig.clone(), &chain);
    let minimal = p.solve_exact().expect("feasible");
    let keep: Vec<NameId> = minimal
        .iter()
        .copied()
        .chain(chain[1..chain.len() - 1].iter().copied())
        .collect();
    let mut rng = StdRng::seed_from_u64(13);
    let mut cfg = RigInstanceConfig::new(&schema, 150);
    cfg.roots = vec![schema.expect_id("Program")];
    cfg.max_depth = 9;
    for _ in 0..15 {
        let inst = random_rig_instance(&rig, &cfg, &mut rng);
        let full = direct_chain_program(&inst, &chain);
        let pruned = direct_chain_program_filtered(&inst, &chain, &keep);
        assert_eq!(full, pruned, "minimal set {minimal:?} on {inst:?}");
    }
}
