//! Property tests for the cost-based planner: the oracle of ISSUE 9.
//!
//! The planner may rewrite an expression (using the synthesized,
//! oracle-verified rules of `RULES.txt`), reorder commutative operands,
//! and choose serial vs segmented kernels per node — but every choice is
//! invisible in the output. For any random document, any random algebra
//! query, and any segment count, the cost-based engine must be
//! **byte-identical** to two independent referees:
//!
//! 1. the quadratic naive evaluator (`tr_core::eval_naive`, the paper's
//!    Definition 2.3 set-builder semantics applied to the *unrewritten*
//!    expression), and
//! 2. the structural engine (`PlannerMode::Structural`, the historical
//!    lower-as-written path).
//!
//! A final adversarial property feeds the planner deliberately *wrong*
//! statistics — empty, astronomically inflated, all-zero with a bogus
//! byte count — and checks the answers still match. Statistics rank
//! verified-equivalent plans; lying to the ranker can only cost time,
//! never correctness.

use proptest::prelude::*;
use tr_core::{eval_naive, Stats};
use tr_query::{parse, Engine, PlannerMode};

/// Segment counts under test: unsegmented, odd, and fine-grained (the
/// same spread the segmented-execution oracle uses).
const SEGMENT_COUNTS: [usize; 3] = [1, 3, 16];

/// Random SGML documents over a fixed tag vocabulary. The first section
/// always carries a note so `sec` and `note` are in every schema and all
/// generated queries parse.
fn doc_strat() -> impl Strategy<Value = String> {
    let words = prop_oneof![
        Just("alpha"),
        Just("beta"),
        Just("gamma"),
        Just("delta"),
        Just("rho"),
    ];
    let item = (words, any::<bool>());
    let sec = proptest::collection::vec(item, 1..10);
    proptest::collection::vec(sec, 1..8).prop_map(|secs| {
        let mut text = String::from("<doc>");
        for (i, sec) in secs.iter().enumerate() {
            text.push_str("<sec>");
            if i == 0 {
                text.push_str("<note>alpha</note> ");
            }
            for (word, noted) in sec {
                if *noted {
                    text.push_str("<note>");
                    text.push_str(word);
                    text.push_str("</note>");
                } else {
                    text.push_str(word);
                }
                text.push(' ');
            }
            text.push_str("</sec>");
        }
        text.push_str("</doc>");
        text
    })
}

/// Random algebra queries: every binary operator the planner can rewrite
/// plus `matching` selections, over name and literal atoms, to depth 3.
/// Duplicated subtrees show up naturally (small atom pool), which is
/// exactly where idempotence/absorption rewrites could misfire.
fn query_strat() -> impl Strategy<Value = String> {
    // Atoms are names and `matching` selections (a bare literal like
    // `"alpha"` parses to match-points, which live outside the algebra
    // the planner rewrites — and outside what `to_expr` can lower).
    let atom = prop_oneof![
        Just("sec".to_owned()),
        Just("note".to_owned()),
        Just(r#"(sec matching "alpha")"#.to_owned()),
        Just(r#"(sec matching "beta")"#.to_owned()),
        Just(r#"(sec matching "gamma")"#.to_owned()),
        Just(r#"(note matching "alpha")"#.to_owned()),
    ];
    atom.prop_recursive(3, 24, 2, |inner| {
        let op = prop_oneof![
            Just("union"),
            Just("intersect"),
            Just("minus"),
            Just("containing"),
            Just("within"),
            Just("before"),
            Just("after"),
        ];
        (inner.clone(), op, inner).prop_map(|(a, op, b)| format!("({a} {op} {b})"))
    })
}

/// The naive referee: parse against the engine's schema, evaluate the
/// *original* expression with the quadratic Definition 2.3 operators.
fn oracle(engine: &Engine, q: &str) -> tr_core::RegionSet {
    let ast = parse(q, engine.schema()).expect("generated queries parse");
    let e = ast.to_expr().expect("generated queries are pure algebra");
    eval_naive(&e, engine.instance())
}

fn assert_identical(got: &tr_core::RegionSet, want: &tr_core::RegionSet, ctx: &str) {
    assert_eq!(got.lefts(), want.lefts(), "{ctx}: lefts column");
    assert_eq!(got.rights(), want.rights(), "{ctx}: rights column");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Cost-based plans equal the naive oracle and the structural engine
    /// at every segment count — rewrites, operand reordering, and
    /// per-node segmentation choices included.
    #[test]
    fn cost_based_plans_match_naive_oracle(text in doc_strat(), q in query_strat()) {
        let reference = Engine::from_sgml(&text).unwrap();
        let want = oracle(&reference, &q);
        for n in SEGMENT_COUNTS {
            let cost = Engine::from_sgml(&text)
                .unwrap()
                .with_segments(n)
                .with_planner_mode(PlannerMode::CostBased);
            let structural = Engine::from_sgml(&text)
                .unwrap()
                .with_segments(n)
                .with_planner_mode(PlannerMode::Structural);
            let got = cost.query(&q).unwrap();
            assert_identical(&got, &want, &format!("naive oracle, N={n}, {q}"));
            let s = structural.query(&q).unwrap();
            assert_identical(&got, &s, &format!("structural mode, N={n}, {q}"));
        }
    }

    /// Lying statistics change which plan wins, never what it returns.
    /// Three adversaries: stats that know nothing, stats that claim every
    /// name is astronomically large, and all-zero counts with a bogus
    /// document size.
    #[test]
    fn lying_stats_never_change_results(text in doc_strat(), q in query_strat()) {
        let truth = Engine::from_sgml(&text).unwrap().with_segments(3);
        let names = truth.schema().len();
        let segs = truth.segment_count();
        let want = truth.query(&q).unwrap();
        let lies = [
            Stats::from_counts(Vec::new(), 0),
            Stats::from_counts(vec![vec![u64::MAX / 8; segs]; names], 1),
            Stats::from_counts(vec![vec![0; segs]; names], u64::MAX / 2),
        ];
        for (i, lie) in lies.into_iter().enumerate() {
            let lied = Engine::from_sgml(&text)
                .unwrap()
                .with_segments(3)
                .with_planner_mode(PlannerMode::CostBased)
                .with_stats(lie);
            let got = lied.query(&q).unwrap();
            assert_identical(&got, &want, &format!("lie #{i}, {q}"));
            assert_identical(&got, &oracle(&truth, &q), &format!("lie #{i} vs oracle, {q}"));
        }
    }
}
