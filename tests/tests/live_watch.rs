//! End-to-end tests for the live-document subsystem: `mutate` swapping
//! engine generations under a real server, `watch` standing queries
//! streaming diffs, slow-consumer shedding, and drain-on-shutdown.
//!
//! The oracle throughout is the server itself *from scratch*: a watch
//! diff stream replayed onto the baseline result must land byte-for-byte
//! on what a fresh `query` against the current generation returns. No
//! test trusts the incremental path to check the incremental path.
//!
//! Counters (`mutate.*`, `watch.*`) live in the process-global `tr_obs`
//! registry, so every test serializes on [`lock`] and reads deltas. The
//! lock helper also pins `TR_SERVE_TEST_WATCH_STALL_MS` for the whole
//! process (the env var is read once), slowing the watch notifier enough
//! that the shed test can overflow a bounded watcher queue.

use rand::prelude::*;
use std::collections::BTreeSet;
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};
use tr_obs::Json;
use tr_query::Engine;
use tr_serve::{Catalog, Client, Server, ServerConfig};

fn lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let lock = LOCK.get_or_init(|| {
        // Before any server exists: every watch event send in this test
        // binary stalls 25ms, making the notifier reliably slower than a
        // burst of mutations (the shed test depends on it; the others
        // just read a handful of events and barely notice).
        std::env::set_var("TR_SERVE_TEST_WATCH_STALL_MS", "25");
        Mutex::new(())
    });
    lock.lock().unwrap_or_else(|p| p.into_inner())
}

/// An SGML document of `secs` sections, each `words_per_sec` filler
/// words, with no occurrence of the probe word "needle".
fn corpus(secs: usize, words_per_sec: usize) -> String {
    const FILLER: [&str; 8] = [
        "alpha", "beta", "gamma", "delta", "text", "region", "algebra", "query",
    ];
    let mut doc = String::from("<doc>");
    for s in 0..secs {
        doc.push_str("<sec>");
        for w in 0..words_per_sec {
            doc.push_str(FILLER[(s * 31 + w * 7) % FILLER.len()]);
            doc.push(' ');
        }
        doc.push_str("</sec>");
    }
    doc.push_str("</doc>");
    doc
}

fn boot(sgml: &str, cfg: ServerConfig) -> Server {
    let mut catalog = Catalog::new();
    catalog.insert("live", Engine::from_sgml(sgml).unwrap());
    Server::start(catalog, "127.0.0.1:0", cfg).unwrap()
}

/// Extracts an `[[l, r], …]` field as an ordered set of pairs.
fn region_pairs(j: &Json, field: &str) -> BTreeSet<(u64, u64)> {
    j.get(field)
        .and_then(Json::as_arr)
        .map(|arr| {
            arr.iter()
                .filter_map(|pair| {
                    let p = pair.as_arr()?;
                    Some((p.first()?.as_u64()?, p.get(1)?.as_u64()?))
                })
                .collect()
        })
        .unwrap_or_default()
}

fn splice(at: u64, delete: u64, insert: &str) -> Json {
    Json::obj()
        .with("kind", Json::from("splice"))
        .with("at", Json::from(at))
        .with("delete", Json::from(delete))
        .with("insert", Json::from(insert))
}

/// Reads events (≤ `timeout` of quiet) and applies `watch` diffs for
/// `watch_id` onto `state`; returns lagged-frame drop counts seen.
fn drain_events(
    client: &mut Client,
    watch_id: u64,
    state: &mut BTreeSet<(u64, u64)>,
    timeout: Duration,
) -> Vec<u64> {
    let mut lags = Vec::new();
    client.set_read_timeout(Some(timeout)).unwrap();
    // An Err means the socket stayed quiet for a full timeout window —
    // the stream is drained for now.
    while let Ok(ev) = client.next_event() {
        assert_eq!(
            ev.get("doc").and_then(Json::as_str),
            Some("live"),
            "event names its document"
        );
        if ev.get("watch").and_then(Json::as_u64) != Some(watch_id) {
            continue;
        }
        match ev.get("ev").and_then(Json::as_str) {
            Some("watch") => {
                for r in region_pairs(&ev, "removed") {
                    state.remove(&r);
                }
                for r in region_pairs(&ev, "added") {
                    state.insert(r);
                }
            }
            Some("watch-lagged") => {
                lags.push(ev.get("dropped").and_then(Json::as_u64).unwrap_or(0));
            }
            other => panic!("unexpected event kind {other:?}"),
        }
    }
    client.set_read_timeout(None).unwrap();
    lags
}

/// The tentpole property: under random edit batches — splices inside
/// sections, deletes straddling the 64KiB segment boundary, appends —
/// the diff stream replayed onto the watcher's baseline is byte-identical
/// to a from-scratch re-run at every generation.
#[test]
fn watch_diff_replay_matches_from_scratch_under_random_edits() {
    let _guard = lock();
    // ~12 sections x ~12KB ≈ 150KB of text: three 64KiB segments, so
    // random positions routinely land in (and deletes straddle) interior
    // segment boundaries.
    let server = boot(&corpus(12, 2000), ServerConfig::default());
    let addr = server.local_addr();
    let mut watcher = Client::connect(addr).unwrap();
    let mut mutator = Client::connect(addr).unwrap();

    const Q: &str = r#"sec matching "needle""#;
    let reply = watcher.watch("live", Q).unwrap();
    let watch_id = reply.get("watch").and_then(Json::as_u64).unwrap();
    assert_eq!(reply.get("generation").and_then(Json::as_u64), Some(0));
    let mut replay = region_pairs(&reply, "regions");
    assert!(replay.is_empty(), "no needles in the seed corpus");

    let mut rng = StdRng::seed_from_u64(0x11FE_2026);
    for round in 0..8 {
        // Current section spans, fresh each round (earlier rounds moved
        // them); splice positions are drawn inside these.
        let secs: Vec<(u64, u64)> = region_pairs(&mutator.query("live", "sec").unwrap(), "regions")
            .into_iter()
            .collect();
        let mut edits = Vec::new();
        for _ in 0..rng.gen_range(1..=3) {
            let (l, r) = secs[rng.gen_range(0..secs.len())];
            let at = rng.gen_range(l + 1..r);
            if rng.gen_bool(0.6) {
                edits.push(splice(at, 0, " needle "));
            } else {
                // Delete up to 64 bytes (clipped to the section) — may
                // swallow earlier needles, shrink the section, or cross
                // a segment boundary.
                edits.push(splice(at, (r - at).min(rng.gen_range(1..64)), ""));
            }
        }
        if rng.gen_bool(0.3) {
            edits.push(
                Json::obj()
                    .with("kind", Json::from("append"))
                    .with("text", Json::from(" trailing filler ")),
            );
        }
        let reply = mutator.mutate("live", Json::Arr(edits)).unwrap();
        assert_eq!(
            reply.get("generation").and_then(Json::as_u64),
            Some(round + 1),
            "generations count mutation batches"
        );

        // Replay the diff stream until it converges on the from-scratch
        // answer for this generation (the notifier is async — give it a
        // bounded window, not an assumption).
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let fresh = region_pairs(&watcher.query("live", Q).unwrap(), "regions");
            if fresh == replay {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "round {round}: replay {replay:?} never converged on {fresh:?}"
            );
            let lags = drain_events(
                &mut watcher,
                watch_id,
                &mut replay,
                Duration::from_millis(300),
            );
            assert!(
                lags.is_empty(),
                "default queue capacity must not shed this gentle load"
            );
        }
    }
    server.shutdown();
}

/// The incrementality proof, end to end: once the index is sharded, a
/// one-segment edit re-indexes exactly one of N segments — visible both
/// in the `mutate` reply and in the `mutate.segments_reindexed` counter.
#[test]
fn mutation_reindexes_only_the_touched_segment() {
    let _guard = lock();
    // ~160KB of text → 3 segments.
    let server = boot(&corpus(8, 3600), ServerConfig::default());
    let mut client = Client::connect(server.local_addr()).unwrap();

    // First splice: the freshly loaded index is one whole-document
    // shard, so this pays the full sharding conversion (everything
    // re-indexed). That cost is once per document, not per edit.
    let r1 = client
        .mutate("live", Json::Arr(vec![splice(40, 0, " first ")]))
        .unwrap();
    let reindexed_1 = r1.get("segments_reindexed").and_then(Json::as_u64).unwrap();
    assert!(reindexed_1 >= 2, "conversion touches every shard");

    // Second splice, near the start: exactly one of the shards may be
    // re-indexed; the rest are reused verbatim.
    let before = tr_obs::counter_value("mutate.segments_reindexed");
    let r2 = client
        .mutate("live", Json::Arr(vec![splice(60, 5, " second ")]))
        .unwrap();
    assert_eq!(
        r2.get("segments_reindexed").and_then(Json::as_u64),
        Some(1),
        "an edit inside one segment re-indexes exactly that segment"
    );
    assert!(r2.get("segments_reused").and_then(Json::as_u64).unwrap() >= 1);
    assert_eq!(
        tr_obs::counter_value("mutate.segments_reindexed") - before,
        1,
        "the counter agrees with the reply"
    );

    // The mutated document still answers queries correctly.
    let hits = client
        .query("live", r#"sec matching "second""#)
        .unwrap()
        .get("hits")
        .and_then(Json::as_u64)
        .unwrap();
    assert_eq!(hits, 1);
    server.shutdown();
}

/// A watcher that reads slower than the document mutates is shed: its
/// backlog collapses into one `watch-lagged` frame with a drop count,
/// and diffs delivered after a resync are correct again.
#[test]
fn slow_watcher_is_shed_and_recovers_after_resync() {
    let _guard = lock();
    let cfg = ServerConfig {
        watch_queue_capacity: 2,
        ..ServerConfig::default()
    };
    let server = boot(&corpus(12, 40), cfg);
    let addr = server.local_addr();
    let mut watcher = Client::connect(addr).unwrap();
    let mut mutator = Client::connect(addr).unwrap();

    const Q: &str = r#"sec matching "needle""#;
    let reply = watcher.watch("live", Q).unwrap();
    let watch_id = reply.get("watch").and_then(Json::as_u64).unwrap();
    let lagged_before = tr_obs::counter_value("watch.lagged");
    let dropped_before = tr_obs::counter_value("watch.dropped_events");

    // Burst: plant a needle in each section, highest position first so
    // earlier splices never shift later targets. Each mutation changes
    // the result (one event apiece) and the 25ms-per-send notifier
    // stall guarantees the 2-frame watcher queue overflows.
    let mut secs: Vec<(u64, u64)> = region_pairs(&mutator.query("live", "sec").unwrap(), "regions")
        .into_iter()
        .collect();
    secs.sort_by_key(|&(l, _)| std::cmp::Reverse(l));
    for &(l, _) in &secs {
        mutator
            .mutate("live", Json::Arr(vec![splice(l + 1, 0, " needle ")]))
            .unwrap();
    }

    // Drain everything that survives; the shed must be visible.
    let mut replay = BTreeSet::new();
    let lags = drain_events(
        &mut watcher,
        watch_id,
        &mut replay,
        Duration::from_millis(400),
    );
    assert!(
        !lags.is_empty(),
        "a 12-event burst into a 2-slot queue must lag"
    );
    assert!(
        lags.iter().all(|&d| d >= 1),
        "lagged frames carry drop counts"
    );
    assert!(tr_obs::counter_value("watch.lagged") > lagged_before);
    assert!(tr_obs::counter_value("watch.dropped_events") > dropped_before);

    // Resync exactly as a client is told to: re-run the query, then keep
    // applying diffs. The next mutation's diff must replay correctly.
    let mut replay = region_pairs(&watcher.query("live", Q).unwrap(), "regions");
    let (l, _) = *secs.last().unwrap();
    mutator
        .mutate("live", Json::Arr(vec![splice(l + 1, 0, " needle needle ")]))
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let fresh = region_pairs(&watcher.query("live", Q).unwrap(), "regions");
        if fresh == replay {
            break;
        }
        assert!(Instant::now() < deadline, "post-shed diff never converged");
        drain_events(
            &mut watcher,
            watch_id,
            &mut replay,
            Duration::from_millis(300),
        );
    }
    server.shutdown();
}

/// With a coalescing window configured, a burst of result-changing
/// mutations collapses into fewer diff frames — at most one per window —
/// whose `coalesced` fields account for every merged mutation, and the
/// merged stream still replays onto the baseline exactly.
#[test]
fn coalescing_merges_burst_diffs_into_few_frames() {
    let _guard = lock();
    let cfg = ServerConfig {
        watch_coalesce: Duration::from_millis(400),
        ..ServerConfig::default()
    };
    let server = boot(&corpus(8, 40), cfg);
    let addr = server.local_addr();
    let mut watcher = Client::connect(addr).unwrap();
    let mut mutator = Client::connect(addr).unwrap();

    const Q: &str = r#"sec matching "needle""#;
    let reply = watcher.watch("live", Q).unwrap();
    let watch_id = reply.get("watch").and_then(Json::as_u64).unwrap();
    let mut replay = region_pairs(&reply, "regions");
    assert!(replay.is_empty());
    let coalesced_before = tr_obs::counter_value("watch.coalesced");

    // Burst: plant a needle in each of 6 sections back to back (highest
    // position first so earlier splices never shift later targets) —
    // far faster than the 400ms window.
    let mut secs: Vec<(u64, u64)> = region_pairs(&mutator.query("live", "sec").unwrap(), "regions")
        .into_iter()
        .collect();
    secs.sort_by_key(|&(l, _)| std::cmp::Reverse(l));
    let burst = 6.min(secs.len());
    for &(l, _) in secs.iter().take(burst) {
        mutator
            .mutate("live", Json::Arr(vec![splice(l + 1, 0, " needle ")]))
            .unwrap();
    }

    let fresh = region_pairs(&watcher.query("live", Q).unwrap(), "regions");
    assert_eq!(fresh.len(), burst);
    let mut frames = 0u64;
    let mut coalesced_sum = 0u64;
    watcher
        .set_read_timeout(Some(Duration::from_millis(600)))
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    while replay != fresh {
        assert!(
            Instant::now() < deadline,
            "coalesced stream never converged: {replay:?} vs {fresh:?}"
        );
        let Ok(ev) = watcher.next_event() else {
            continue;
        };
        if ev.get("watch").and_then(Json::as_u64) != Some(watch_id) {
            continue;
        }
        assert_eq!(
            ev.get("ev").and_then(Json::as_str),
            Some("watch"),
            "default capacity must not shed this burst"
        );
        for r in region_pairs(&ev, "removed") {
            replay.remove(&r);
        }
        for r in region_pairs(&ev, "added") {
            replay.insert(r);
        }
        frames += 1;
        coalesced_sum += ev.get("coalesced").and_then(Json::as_u64).unwrap();
    }
    watcher.set_read_timeout(None).unwrap();
    assert!(
        frames < burst as u64,
        "a {burst}-mutation burst must coalesce into fewer than {burst} frames (got {frames})"
    );
    assert_eq!(
        coalesced_sum, burst as u64,
        "the coalesced fields account for every merged mutation"
    );
    assert!(
        tr_obs::counter_value("watch.coalesced") > coalesced_before,
        "deferred merges are counted"
    );
    server.shutdown();
}

/// Graceful shutdown drains the notifier and unregisters every watcher;
/// a dropped connection unregisters its own watches while the server
/// keeps running.
#[test]
fn shutdown_and_disconnect_unregister_watchers() {
    let _guard = lock();
    let server = boot(&corpus(4, 40), ServerConfig::default());
    let addr = server.local_addr();

    // A connection that goes away takes its watches with it.
    let registered_before = tr_obs::counter_value("watch.registered");
    let unregistered_before = tr_obs::counter_value("watch.unregistered");
    {
        let mut ghost = Client::connect(addr).unwrap();
        ghost.watch("live", "sec").unwrap();
    } // dropped: the conn thread notices EOF within one read tick
    let deadline = Instant::now() + Duration::from_secs(5);
    while tr_obs::counter_value("watch.unregistered") == unregistered_before {
        assert!(
            Instant::now() < deadline,
            "disconnect never unregistered the watch"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // Live watchers at shutdown: the drain unregisters the rest.
    let mut client = Client::connect(addr).unwrap();
    client.watch("live", "sec").unwrap();
    client.watch("live", r#"sec matching "alpha""#).unwrap();
    let secs = region_pairs(&client.query("live", "sec").unwrap(), "regions");
    let (l, _) = *secs.iter().next().unwrap();
    client
        .mutate("live", Json::Arr(vec![splice(l + 1, 0, " alpha ")]))
        .unwrap();
    server.shutdown(); // must not hang on the queued events
    assert_eq!(
        tr_obs::counter_value("watch.registered") - registered_before,
        tr_obs::counter_value("watch.unregistered") - unregistered_before,
        "every watch registered in this test was unregistered"
    );
}

/// `unwatch` stops the stream (and only the owning connection can do
/// it); unknown ids are a structured error.
#[test]
fn unwatch_stops_events_and_checks_ownership() {
    let _guard = lock();
    let server = boot(&corpus(4, 40), ServerConfig::default());
    let addr = server.local_addr();
    let mut watcher = Client::connect(addr).unwrap();
    let mut other = Client::connect(addr).unwrap();

    let reply = watcher.watch("live", r#"sec matching "needle""#).unwrap();
    let watch_id = reply.get("watch").and_then(Json::as_u64).unwrap();

    // Another connection cannot cancel it…
    let err = other.unwatch(watch_id).unwrap_err();
    assert_eq!(err.code(), Some("unknown_watch"));
    // …the owner can.
    watcher.unwatch(watch_id).unwrap();
    let err = watcher.unwatch(watch_id).unwrap_err();
    assert_eq!(err.code(), Some("unknown_watch"));

    // A result-changing mutation after unwatch produces no event.
    let secs = region_pairs(&other.query("live", "sec").unwrap(), "regions");
    let (l, _) = *secs.iter().next().unwrap();
    other
        .mutate("live", Json::Arr(vec![splice(l + 1, 0, " needle ")]))
        .unwrap();
    watcher
        .set_read_timeout(Some(Duration::from_millis(300)))
        .unwrap();
    assert!(
        watcher.next_event().is_err(),
        "no events may arrive after unwatch"
    );
    server.shutdown();
}

/// Session views observe mutations: a `define-view` query re-resolves
/// against the newest generation on every use (satellite regression for
/// the catalog swap — a stale cached engine would freeze the view).
#[test]
fn session_views_resolve_against_the_new_generation() {
    let _guard = lock();
    let server = boot(&corpus(6, 40), ServerConfig::default());
    let mut client = Client::connect(server.local_addr()).unwrap();

    client
        .define_view("live", "hot", r#"sec matching "needle""#)
        .unwrap();
    let hits0 = client
        .query("live", "hot")
        .unwrap()
        .get("hits")
        .and_then(Json::as_u64)
        .unwrap();
    assert_eq!(hits0, 0);

    let secs = region_pairs(&client.query("live", "sec").unwrap(), "regions");
    let (l, _) = *secs.iter().next().unwrap();
    let reply = client
        .mutate("live", Json::Arr(vec![splice(l + 1, 0, " needle ")]))
        .unwrap();
    assert_eq!(reply.get("generation").and_then(Json::as_u64), Some(1));

    // Same session, same view, new generation.
    let reply = client.query("live", "hot").unwrap();
    assert_eq!(reply.get("hits").and_then(Json::as_u64), Some(1));
    assert_eq!(reply.get("generation").and_then(Json::as_u64), Some(1));
    server.shutdown();
}
