//! Property tests for the Arc-backed columnar [`RegionSet`]: every
//! columnar operator (serial and `_par`) is byte-identical to a plain
//! `Vec<Region>` oracle that never touches the columnar code paths, and
//! zero-copy views stay frozen no matter what later happens to the
//! buffer they alias.

use proptest::prelude::*;
use tr_core::kernel::{set_mode, Mode};
use tr_core::{ops, par::Parallelism, region, Pos, Region, RegionSet};

/// The three kernel dispatch modes every operator must agree across.
const MODES: [Mode; 3] = [Mode::ForceScalar, Mode::ForceChunked, Mode::Auto];

/// Restores [`Mode::Auto`] when dropped, so a failing property case
/// cannot leave the process-global dispatch mode pinned for the other
/// tests in this binary.
struct ModeGuard;
impl Drop for ModeGuard {
    fn drop(&mut self) {
        set_mode(Mode::Auto);
    }
}

/// Strategy: a random sorted, deduplicated `Vec<Region>` — the oracle's
/// representation, built without `RegionSet` involvement (`Region`'s
/// `Ord` is the paper's `(left asc, right desc)` order).
fn region_vecs() -> impl Strategy<Value = Vec<Region>> {
    proptest::collection::vec((0u32..240, 0u32..16), 0..48).prop_map(|pairs| {
        let mut v: Vec<Region> = pairs.into_iter().map(|(l, d)| region(l, l + d)).collect();
        v.sort();
        v.dedup();
        v
    })
}

/// Aggressive parallelism: enough threads to split, a cutoff low enough
/// that even these small inputs take the parallel path.
fn par() -> Parallelism {
    Parallelism::new(4, 2)
}

/// The Definition 2.3 selection oracle over plain vectors.
fn sel(a: &[Region], b: &[Region], pred: impl Fn(Region, Region) -> bool) -> Vec<Region> {
    a.iter()
        .copied()
        .filter(|&x| b.iter().any(|&y| pred(x, y)))
        .collect()
}

/// Asserts a columnar result is byte-identical to the oracle: same
/// regions, same column contents, and internally consistent.
fn assert_matches(got: &RegionSet, want: &[Region]) {
    assert_eq!(got.to_vec(), want);
    let lefts: Vec<Pos> = want.iter().map(|r| r.left()).collect();
    let rights: Vec<Pos> = want.iter().map(|r| r.right()).collect();
    assert_eq!(got.lefts(), &lefts[..]);
    assert_eq!(got.rights(), &rights[..]);
    assert!(got.validate().is_ok(), "{}", got.validate().unwrap_err());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The four structural operators, serial and parallel, against the
    /// pairwise oracle.
    #[test]
    fn structural_ops_match_oracle(av in region_vecs(), bv in region_vecs()) {
        let a = RegionSet::from_regions(av.clone());
        let b = RegionSet::from_regions(bv.clone());
        let p = par();
        type Pred = fn(Region, Region) -> bool;
        type Op = fn(&RegionSet, &RegionSet) -> RegionSet;
        type ParOp = fn(&RegionSet, &RegionSet, &Parallelism) -> RegionSet;
        let cases: [(Op, ParOp, Pred); 4] = [
            (ops::includes, ops::includes_par, |x, y| x.includes(y)),
            (ops::included_in, ops::included_in_par, |x, y| x.included_in(y)),
            (ops::precedes, ops::precedes_par, |x, y| x.precedes(y)),
            (ops::follows, ops::follows_par, |x, y| x.follows(y)),
        ];
        for (f, fp, pred) in cases {
            let want = sel(&av, &bv, pred);
            assert_matches(&f(&a, &b), &want);
            assert_matches(&fp(&a, &b, &p), &want);
        }
    }

    /// Union, intersection, and difference, serial and parallel, against
    /// sort/dedup set arithmetic on plain vectors.
    #[test]
    fn set_ops_match_oracle(av in region_vecs(), bv in region_vecs()) {
        let a = RegionSet::from_regions(av.clone());
        let b = RegionSet::from_regions(bv.clone());
        let p = par();

        let mut union: Vec<Region> = av.iter().chain(&bv).copied().collect();
        union.sort();
        union.dedup();
        let inter: Vec<Region> = av.iter().copied().filter(|x| bv.contains(x)).collect();
        let diff: Vec<Region> = av.iter().copied().filter(|x| !bv.contains(x)).collect();

        assert_matches(&a.union(&b), &union);
        assert_matches(&a.union_par(&b, &p), &union);
        assert_matches(&a.intersect(&b), &inter);
        assert_matches(&a.intersect_par(&b, &p), &inter);
        assert_matches(&a.difference(&b), &diff);
        assert_matches(&a.difference_par(&b, &p), &diff);
    }

    /// `filter` / `filter_par` against vector `filter`, for a predicate
    /// that produces both contiguous (zero-copy) and scattered results.
    #[test]
    fn filter_matches_oracle(av in region_vecs(), lo in 0u32..240, hi in 0u32..256) {
        let a = RegionSet::from_regions(av.clone());
        let pred = |r: Region| r.left() >= lo && r.right() <= hi;
        let want: Vec<Region> = av.iter().copied().filter(|&r| pred(r)).collect();
        assert_matches(&a.filter(pred), &want);
        assert_matches(&a.filter_par(&par(), pred), &want);
    }

    /// `from_columns` (sorted-adoption fast path or fallback sort) always
    /// agrees with `from_regions` on the same data.
    #[test]
    fn from_columns_matches_from_regions(pairs in proptest::collection::vec((0u32..240, 0u32..16), 0..48)) {
        let regions: Vec<Region> = pairs.iter().map(|&(l, d)| region(l, l + d)).collect();
        let (lefts, rights) = pairs.iter().map(|&(l, d)| (l, l + d)).unzip();
        let from_cols = RegionSet::from_columns(lefts, rights);
        prop_assert!(from_cols.validate().is_ok());
        prop_assert_eq!(from_cols, RegionSet::from_regions(regions));
    }

    /// Kernel dispatch must be invisible in the output: every structural
    /// operator, serial and parallel, returns byte-identical results
    /// under the forced scalar loops, the forced 8-lane chunked loops,
    /// and `Auto` — including over **misaligned mid-buffer views**, whose
    /// start offsets put the columns at arbitrary lane/word phase (the
    /// chunked kernels' masks and tails must respect the view window, not
    /// the backing buffer).
    #[test]
    fn kernel_modes_are_byte_identical(
        av in region_vecs(), bv in region_vecs(),
        alo in 0usize..48, alen in 0usize..48,
        blo in 0usize..48, blen in 0usize..48,
    ) {
        let _guard = ModeGuard;
        let a_full = RegionSet::from_regions(av.clone());
        let b_full = RegionSet::from_regions(bv.clone());
        let (alo, blo) = (alo.min(av.len()), blo.min(bv.len()));
        let ahi = (alo + alen).min(av.len());
        let bhi = (blo + blen).min(bv.len());
        let (a, b) = (a_full.slice(alo, ahi), b_full.slice(blo, bhi));
        let (aw, bw) = (&av[alo..ahi], &bv[blo..bhi]);
        let p = par();
        type Pred = fn(Region, Region) -> bool;
        type Op = fn(&RegionSet, &RegionSet) -> RegionSet;
        type ParOp = fn(&RegionSet, &RegionSet, &Parallelism) -> RegionSet;
        let cases: [(Op, ParOp, Pred); 4] = [
            (ops::includes, ops::includes_par, |x, y| x.includes(y)),
            (ops::included_in, ops::included_in_par, |x, y| x.included_in(y)),
            (ops::precedes, ops::precedes_par, |x, y| x.precedes(y)),
            (ops::follows, ops::follows_par, |x, y| x.follows(y)),
        ];
        for (f, fp, pred) in cases {
            let want = sel(aw, bw, pred);
            for mode in MODES {
                set_mode(mode);
                assert_matches(&f(&a, &b), &want);
                assert_matches(&fp(&a, &b, &p), &want);
            }
        }
    }

    /// Set algebra under every kernel mode (the merges gallop after long
    /// single-side runs; the gallop must not change a single byte), again
    /// over misaligned mid-buffer views.
    #[test]
    fn set_ops_are_mode_invariant(
        av in region_vecs(), bv in region_vecs(),
        alo in 0usize..48, blo in 0usize..48,
    ) {
        let _guard = ModeGuard;
        let a_full = RegionSet::from_regions(av.clone());
        let b_full = RegionSet::from_regions(bv.clone());
        let (alo, blo) = (alo.min(av.len()), blo.min(bv.len()));
        let (a, b) = (a_full.slice(alo, av.len()), b_full.slice(blo, bv.len()));
        let (aw, bw) = (&av[alo..], &bv[blo..]);

        let mut union: Vec<Region> = aw.iter().chain(bw).copied().collect();
        union.sort();
        union.dedup();
        let inter: Vec<Region> = aw.iter().copied().filter(|x| bw.contains(x)).collect();
        let diff: Vec<Region> = aw.iter().copied().filter(|x| !bw.contains(x)).collect();
        for mode in MODES {
            set_mode(mode);
            assert_matches(&a.union(&b), &union);
            assert_matches(&a.intersect(&b), &inter);
            assert_matches(&a.difference(&b), &diff);
        }
    }

    /// Segment-window decomposition, the invariant the segmented corpus
    /// engine rests on: slicing the probe side at its segment split
    /// points and running an operator per window (against the full
    /// partner side) answers exactly the whole-set oracle per window, and
    /// the windows concatenate back to the whole-set result — under every
    /// kernel mode, with window starts straddling lane boundaries.
    #[test]
    fn segment_windows_stitch_identically(
        av in region_vecs(), bv in region_vecs(), nseg in 1usize..6,
    ) {
        let _guard = ModeGuard;
        let a = RegionSet::from_regions(av.clone());
        let b = RegionSet::from_regions(bv.clone());
        let bounds = tr_core::seg::segment_bounds(256, nseg);
        let ps = tr_core::seg::split_points(&a, &bounds);
        type Pred = fn(Region, Region) -> bool;
        type Op = fn(&RegionSet, &RegionSet) -> RegionSet;
        let cases: [(Op, Pred); 2] = [
            (ops::includes, |x, y| x.includes(y)),
            (ops::included_in, |x, y| x.included_in(y)),
        ];
        for (f, pred) in cases {
            let whole = sel(&av, &bv, pred);
            for mode in MODES {
                set_mode(mode);
                let mut stitched: Vec<Region> = Vec::new();
                for w in ps.windows(2) {
                    let win = a.slice(w[0], w[1]);
                    let want = sel(&av[w[0]..w[1]], &bv, pred);
                    let got = f(&win, &b);
                    assert_matches(&got, &want);
                    stitched.extend(got.to_vec());
                }
                prop_assert_eq!(&stitched, &whole, "windows must stitch to the whole");
            }
        }
    }

    /// The aliasing guarantee: a zero-copy slice is a frozen snapshot.
    /// Later activity on the parent handle — mutation (which must copy on
    /// write, since the buffer is shared), more slicing, or dropping the
    /// parent entirely — never changes what the view sees.
    #[test]
    fn zero_copy_views_survive_parent_activity(
        av in region_vecs(),
        lo in 0usize..48,
        len in 0usize..48,
        (el, ed) in (0u32..240, 0u32..16),
    ) {
        let mut parent = RegionSet::from_regions(av);
        let lo = lo.min(parent.len());
        let hi = (lo + len).min(parent.len());
        let view = parent.slice(lo, hi);
        let snapshot = view.to_vec();
        prop_assert!(view.shares_buf(&parent), "slice must alias, not copy");

        // Mutate through a sibling handle first: the buffer is shared
        // three ways (parent, view, sibling), so this must copy.
        let mut sibling = parent.clone();
        if sibling.insert(region(el, el + ed)) {
            prop_assert!(!sibling.shares_buf(&view), "insert into a shared buffer must copy");
        }
        prop_assert_eq!(view.to_vec(), snapshot.clone());

        // Then through the parent itself, then drop the parent.
        parent.insert(region(el, el + ed));
        parent.remove(region(el, el + ed));
        drop(parent);
        drop(sibling);
        prop_assert_eq!(view.to_vec(), snapshot);
        prop_assert!(view.validate().is_ok());
    }
}
