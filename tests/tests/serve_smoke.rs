//! End-to-end tests for tr-serve: a real TCP server, a real multi-doc
//! catalog (persisted `.trx` next to raw SGML and source), and real
//! concurrent clients — including one that speaks garbage.
//!
//! The serve counters live in the process-global `tr_obs` registry, so
//! every test here serializes on [`lock`] and reads counter *deltas*.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Duration;
use tr_obs::Json;
use tr_query::Engine;
use tr_serve::protocol;
use tr_serve::{Catalog, Client, Server, ServerConfig};

fn lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|p| p.into_inner())
}

const PLAY: &str = "<play><act><speech>to be or not to be that is the question</speech>\
     <speech>whether tis nobler in the mind to suffer</speech></act>\
     <act><speech>the slings and arrows of outrageous fortune</speech>\
     <speech>or to take arms against a sea of troubles</speech></act></play>";

const PROG: &str = "program p; proc alpha; begin end; proc beta; begin end; begin end.";

/// A corpus directory holding raw SGML, toy-language source, and a
/// persisted `.trx` index — all three catalog load paths.
fn corpus_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tr_serve_smoke_{}_{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("play.sgml"), PLAY).unwrap();
    std::fs::write(dir.join("prog.src"), PROG).unwrap();
    let e = Engine::from_sgml(PLAY).unwrap();
    tr_store::save_document(dir.join("stored.trx"), e.text(), e.instance(), e.rig()).unwrap();
    dir
}

/// The serve request counters that must balance at quiescence.
fn request_counters() -> (u64, u64, u64) {
    (
        tr_obs::counter_value("serve.accepted"),
        tr_obs::counter_value("serve.completed"),
        tr_obs::counter_value("serve.failed"),
    )
}

/// Mixed traffic from many concurrent clients; every query result must
/// be byte-identical to a direct in-process `Engine` call.
#[test]
fn concurrent_clients_get_identical_results() {
    let _guard = lock();
    let dir = corpus_dir("mixed");
    let catalog = Catalog::open(&dir).unwrap();
    assert_eq!(catalog.len(), 3);

    let (acc0, comp0, fail0) = request_counters();
    let malformed0 = tr_obs::counter_value("serve.malformed");

    let server = Server::start(catalog, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr();

    // Independent reference engines, built from the same sources the
    // catalog saw.
    let ref_play = Arc::new(Engine::from_sgml(PLAY).unwrap());
    let ref_prog = Arc::new(Engine::from_source(PROG).unwrap());

    let queries = [
        ("play", r#"speech matching "be""#),
        ("play", "speech within act"),
        ("stored", r#"speech matching "fortune""#),
        ("prog", "Proc"),
        ("prog", "Proc_body within Proc"),
    ];
    let garbage = [
        "not json at all",
        r#"{"op":"no-such-op"}"#,
        r#"{"op":"query"}"#,
        r#"{"id":[1,2],"op":"query","doc":"play","q":"speech","limit":"huge"}"#,
        "{}",
        "\u{7f}\u{1b}[2J{{{",
    ];
    let garbage_sent = Arc::new(AtomicUsize::new(0));

    const CLIENTS: usize = 8;
    const REQUESTS: usize = 50;
    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let ref_play = Arc::clone(&ref_play);
            let ref_prog = Arc::clone(&ref_prog);
            let garbage_sent = Arc::clone(&garbage_sent);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                client
                    .set_read_timeout(Some(Duration::from_secs(20)))
                    .unwrap();
                for i in 0..REQUESTS {
                    match (c + i) % 5 {
                        0 => {
                            let (doc, q) = queries[(c + i) % queries.len()];
                            let reply = client.query(doc, q).unwrap();
                            let reference = if doc == "prog" { &ref_prog } else { &ref_play };
                            let hits = reference.query(q).unwrap();
                            let expected =
                                protocol::result_fields(&hits, protocol::DEFAULT_REGION_LIMIT);
                            // Byte-identical: serialize both sides.
                            assert_eq!(
                                reply.get("hits").unwrap().to_string(),
                                expected.get("hits").unwrap().to_string(),
                                "{doc}: {q}"
                            );
                            assert_eq!(
                                reply.get("regions").unwrap().to_string(),
                                expected.get("regions").unwrap().to_string(),
                                "{doc}: {q}"
                            );
                        }
                        1 => {
                            let reply = client
                                .batch("play", &[r#"speech matching "be""#, "act", "speech"])
                                .unwrap();
                            let results = reply.get("results").unwrap().as_arr().unwrap();
                            let (expected, _) = ref_play
                                .query_batch_with_stats(&[
                                    r#"speech matching "be""#,
                                    "act",
                                    "speech",
                                ])
                                .unwrap();
                            for (got, want) in results.iter().zip(&expected) {
                                let want =
                                    protocol::result_fields(want, protocol::DEFAULT_REGION_LIMIT);
                                assert_eq!(got.to_string(), want.to_string());
                            }
                        }
                        2 => {
                            let reply = client.explain("play", "speech within act").unwrap();
                            let text = reply.get("text").unwrap().as_str().unwrap();
                            assert_eq!(text, ref_play.explain("speech within act").unwrap());
                        }
                        3 => {
                            let stats = client.stats().unwrap();
                            assert_eq!(stats.get("docs").unwrap().as_u64(), Some(3));
                        }
                        _ => {
                            // The garbage client: server must answer with a
                            // structured error and keep the session alive.
                            client.send_raw(garbage[(c + i) % garbage.len()]).unwrap();
                            let reply = client.recv().unwrap();
                            assert_eq!(reply.get("ok"), Some(&Json::Bool(false)));
                            assert!(reply.get("error").unwrap().get("code").is_some());
                            garbage_sent.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                }
                // The session survived all of it.
                client.ping().unwrap();
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    server.shutdown();

    // At quiescence every accepted request reached exactly one terminal
    // state, and every garbage frame was counted as malformed.
    let (acc, comp, fail) = request_counters();
    assert_eq!(acc - acc0, (comp - comp0) + (fail - fail0));
    assert!(
        tr_obs::counter_value("serve.malformed") - malformed0
            >= garbage_sent.load(Ordering::SeqCst) as u64
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// A tiny queue behind a single worker must shed pipelined load with
/// structured `rejected` replies — and still answer everything else.
#[test]
fn admission_control_rejects_when_saturated() {
    let _guard = lock();
    let dir = corpus_dir("saturate");
    let catalog = Catalog::open(&dir).unwrap();
    let (acc0, comp0, fail0) = request_counters();
    let rejected0 = tr_obs::counter_value("serve.rejected");

    let cfg = ServerConfig {
        workers: 1,
        queue_capacity: 1,
        ..ServerConfig::default()
    };
    let server = Server::start(catalog, "127.0.0.1:0", cfg).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(20)))
        .unwrap();

    // Fire a burst of pipelined queries in one write, then collect every
    // reply. With queue=1/worker=1 some must be shed.
    const BURST: usize = 100;
    let frame = r#"{"op":"query","doc":"play","q":"(speech within act) matching \"to\""}"#;
    let burst = format!("{frame}\n").repeat(BURST);
    client.send_raw(burst.trim_end()).unwrap();

    let mut ok = 0usize;
    let mut rejected = 0usize;
    for _ in 0..BURST {
        let reply = client.recv().unwrap();
        match reply.get("ok") {
            Some(Json::Bool(true)) => ok += 1,
            _ => {
                let code = reply
                    .get("error")
                    .unwrap()
                    .get("code")
                    .unwrap()
                    .as_str()
                    .unwrap()
                    .to_owned();
                assert_eq!(code, "rejected", "only admission sheds load here");
                rejected += 1;
            }
        }
    }
    assert_eq!(ok + rejected, BURST, "every frame got exactly one reply");
    assert!(ok >= 1, "the worker made progress");
    assert!(rejected >= 1, "a 1-deep queue must shed a 100-deep burst");

    // Shed load is visible in the counters, and the invariant holds:
    // rejected requests were never accepted.
    server.shutdown();
    let (acc, comp, fail) = request_counters();
    assert_eq!(acc - acc0, (comp - comp0) + (fail - fail0));
    assert_eq!(
        tr_obs::counter_value("serve.rejected") - rejected0,
        rejected as u64
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// A zero deadline forces every queued request to expire: the client gets
/// structured `timeout` replies and the failure counters account for them.
#[test]
fn deadlines_expire_queued_requests() {
    let _guard = lock();
    let dir = corpus_dir("deadline");
    let catalog = Catalog::open(&dir).unwrap();
    let (acc0, comp0, fail0) = request_counters();
    let timeouts0 = tr_obs::counter_value("serve.timeouts");

    let cfg = ServerConfig {
        deadline: Duration::ZERO,
        ..ServerConfig::default()
    };
    let server = Server::start(catalog, "127.0.0.1:0", cfg).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(20)))
        .unwrap();
    for _ in 0..5 {
        let err = client.query("play", "speech").unwrap_err();
        assert_eq!(err.code(), Some("timeout"));
    }
    server.shutdown();

    let (acc, comp, fail) = request_counters();
    assert_eq!(acc - acc0, (comp - comp0) + (fail - fail0));
    assert!(tr_obs::counter_value("serve.timeouts") - timeouts0 >= 5);
    std::fs::remove_dir_all(&dir).ok();
}

/// Shutdown with a deep backlog behind one worker drains: every admitted
/// request still gets its reply before the socket closes.
#[test]
fn graceful_shutdown_drains_admitted_requests() {
    let _guard = lock();
    let dir = corpus_dir("drain");
    let catalog = Catalog::open(&dir).unwrap();
    let (acc0, comp0, fail0) = request_counters();

    let cfg = ServerConfig {
        workers: 1,
        queue_capacity: 64,
        ..ServerConfig::default()
    };
    let server = Server::start(catalog, "127.0.0.1:0", cfg).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(20)))
        .unwrap();

    let frame = r#"{"op":"query","doc":"play","q":"(speech within act) matching \"the\""}"#;
    let burst = format!("{frame}\n").repeat(32);
    client.send_raw(burst.trim_end()).unwrap();
    // Give the connection thread a moment to admit (some of) the burst,
    // then shut down while the single worker is still chewing.
    std::thread::sleep(Duration::from_millis(20));
    server.shutdown();

    // Everything the server admitted was answered before close; frames it
    // never read simply have no reply. Count replies until EOF.
    let mut replies = 0u64;
    // Iterate until EOF — an Err from recv means the drain is complete.
    while let Ok(reply) = client.recv() {
        assert!(reply.get("ok").is_some(), "reply frames stay structured");
        replies += 1;
    }
    let (acc, comp, fail) = request_counters();
    assert_eq!(acc - acc0, (comp - comp0) + (fail - fail0));
    // Every terminal outcome for an accepted request produced a reply the
    // client actually received (rejected/shutting-down replies, if any,
    // arrive on top of that).
    assert!(
        replies >= (comp - comp0) + (fail - fail0),
        "drain lost replies: got {replies}, accepted {}",
        acc - acc0
    );
    assert!(replies >= 1, "at least part of the burst was admitted");
    std::fs::remove_dir_all(&dir).ok();
}

/// The mutation-persistence round trip over the wire: `mutate` builds a
/// successor generation, `save` writes it to a `.trx` v3 store
/// atomically, and a catalog reopened on the saved file serves answers
/// byte-identical to the live (mutated) server's.
#[test]
fn save_round_trips_a_mutated_document_through_trx() {
    let _guard = lock();
    let dir = corpus_dir("save");
    let catalog = Catalog::open(&dir).unwrap();
    let server = Server::start(catalog, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    // Mutate so the saved generation differs from the file on disk:
    // splice a word *inside* the last speech (splices stretch the
    // containing regions; they don't reparse markup).
    let edits = Json::Arr(vec![Json::obj()
        .with("kind", Json::from("splice"))
        .with("at", Json::from(PLAY.find("troubles").unwrap() as u64))
        .with("insert", Json::from("silence "))]);
    let reply = client.mutate("play", edits).unwrap();
    let generation = reply.get("generation").unwrap().as_u64().unwrap();
    assert!(generation >= 1, "mutate must publish a successor");

    // Default target: the document's backing file with a .trx extension.
    let reply = client.save("play", None).unwrap();
    let default_path = reply.get("path").unwrap().as_str().unwrap().to_owned();
    assert!(default_path.ends_with("play.trx"), "got {default_path}");
    assert_eq!(reply.get("generation").unwrap().as_u64(), Some(generation));
    assert!(std::path::Path::new(&default_path).exists());

    // Explicit target in a sibling directory (a fresh dir, so the .trx
    // doesn't collide with play.sgml's catalog stem on reload).
    let out_dir = dir.join("saved");
    std::fs::create_dir_all(&out_dir).unwrap();
    let out_path = out_dir.join("play.trx");
    client
        .save("play", Some(out_path.to_str().unwrap()))
        .unwrap();

    let queries = [
        r#"speech matching "silence""#,
        r#"speech matching "be""#,
        "speech within act",
        "act containing speech",
    ];
    let live: Vec<Json> = queries
        .iter()
        .map(|q| client.query("play", q).unwrap())
        .collect();

    // Reload from the saved store and compare result fields (generation
    // restarts at 1 on a fresh load, so it is excluded by construction).
    let reloaded = Catalog::open(&out_dir).unwrap();
    let reopened = Server::start(reloaded, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut reader = Client::connect(reopened.local_addr()).unwrap();
    for (q, live_reply) in queries.iter().zip(&live) {
        let reply = reader.query("play", q).unwrap();
        assert_eq!(
            reply.get("hits"),
            live_reply.get("hits"),
            "hits diverge for {q}"
        );
        assert_eq!(
            reply.get("regions"),
            live_reply.get("regions"),
            "regions diverge for {q}"
        );
    }
    // The mutation itself is visible through the reload.
    assert_eq!(
        reader
            .query("play", r#"speech matching "silence""#)
            .unwrap()
            .get("hits")
            .unwrap()
            .as_u64(),
        Some(1)
    );

    reopened.shutdown();
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
