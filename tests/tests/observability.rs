//! The engine's `BatchStats` and the `tr_obs` registry must agree: the
//! batch API reports per-batch numbers, the registry accumulates the same
//! events process-wide, and `hits + misses + extended == queries` always.
//!
//! This file deliberately holds a single `#[test]` in its own integration
//! binary: the obs registry is process-global, and a sibling test touching
//! the engine concurrently would make the counter deltas unattributable.

use tr_query::Engine;

/// The counters the engine path maintains (see `EngineMetrics`).
#[derive(Debug, Clone, Copy, PartialEq)]
struct EngineCounters {
    batches: u64,
    queries: u64,
    hits: u64,
    misses: u64,
    extended: u64,
    nodes_executed: u64,
    bytes_avoided: u64,
    base_zero_copy: u64,
}

impl EngineCounters {
    fn read() -> EngineCounters {
        EngineCounters {
            batches: tr_obs::counter_value("engine.batches"),
            queries: tr_obs::counter_value("engine.queries"),
            hits: tr_obs::counter_value("engine.cache.hits"),
            misses: tr_obs::counter_value("engine.cache.misses"),
            extended: tr_obs::counter_value("engine.extended"),
            nodes_executed: tr_obs::counter_value("engine.nodes_executed"),
            bytes_avoided: tr_obs::counter_value("engine.cache.bytes_avoided"),
            base_zero_copy: tr_obs::counter_value("exec.base_zero_copy"),
        }
    }

    fn delta_since(self, before: EngineCounters) -> EngineCounters {
        EngineCounters {
            batches: self.batches - before.batches,
            queries: self.queries - before.queries,
            hits: self.hits - before.hits,
            misses: self.misses - before.misses,
            extended: self.extended - before.extended,
            nodes_executed: self.nodes_executed - before.nodes_executed,
            bytes_avoided: self.bytes_avoided - before.bytes_avoided,
            base_zero_copy: self.base_zero_copy - before.base_zero_copy,
        }
    }
}

/// What a cache hit for `set` would have copied under the old owned
/// representation: both `u32` columns.
fn region_bytes(set: &tr_core::RegionSet) -> u64 {
    (set.len() * 2 * std::mem::size_of::<tr_core::Pos>()) as u64
}

#[test]
fn batch_stats_and_obs_registry_agree() {
    let text = "program a; proc outer; proc inner; var x; begin end; begin end; begin end.";
    let engine = Engine::from_source(text).unwrap();
    let queries: Vec<&str> = vec![
        "Name within Proc_header within Proc",
        r#"Proc containing (Var matching "x")"#,
        // Duplicate of the first query *within* the batch: the shared plan
        // dedups it to the same root, but the result cache only fills at
        // materialize time, so it still counts as a miss in round one.
        "Name within Proc_header within Proc",
        // Extended operator: bypasses plan and cache entirely.
        r#"Proc directly containing (Proc_body directly containing (Var matching "x"))"#,
    ];

    let before = EngineCounters::read();

    // Round 1: cold cache.
    let (res1, stats1) = engine.query_batch_with_stats(&queries).unwrap();
    assert_eq!(stats1.queries, 4);
    assert_eq!(stats1.cache_hits, 0, "cold cache: no hits");
    let d1 = EngineCounters::read().delta_since(before);
    assert_eq!(d1.batches, 1);
    assert_eq!(d1.queries, stats1.queries as u64);
    assert_eq!(d1.hits, stats1.cache_hits as u64);
    assert_eq!(d1.misses, 3, "both copies of the duplicate miss");
    assert_eq!(d1.extended, 1);
    assert_eq!(d1.nodes_executed, stats1.nodes_evaluated as u64);
    assert_eq!(d1.bytes_avoided, 0, "no hits, so nothing avoided");
    assert!(
        d1.base_zero_copy > 0,
        "base name sets are fetched as zero-copy handles"
    );

    // Round 2: every plan query hits the cache; the extended query can
    // never be cached and evaluates again.
    let (res2, stats2) = engine.query_batch_with_stats(&queries).unwrap();
    assert_eq!(res2, res1, "cached answers are identical");
    assert_eq!(stats2.cache_hits, 3);
    assert_eq!(stats2.nodes_evaluated, 0, "nothing left to execute");
    let d2 = EngineCounters::read().delta_since(before);
    assert_eq!(d2.batches, 2);
    assert_eq!(
        d2.hits,
        (stats1.cache_hits + stats2.cache_hits) as u64,
        "registry accumulates per-batch hits"
    );
    assert_eq!(
        d2.nodes_executed,
        (stats1.nodes_evaluated + stats2.nodes_evaluated) as u64
    );
    // The acceptance claim of the columnar refactor, in counters: round
    // 2's three hits returned handles, not copies. `bytes_avoided` prices
    // exactly the columns a copy would have duplicated, and no further
    // base sets were fetched because nothing executed.
    assert_eq!(
        d2.bytes_avoided,
        2 * region_bytes(&res2[0]) + region_bytes(&res2[1]),
        "each hit records the copy it skipped"
    );
    assert_eq!(
        d2.base_zero_copy, d1.base_zero_copy,
        "round 2 executed nothing, so no new base-set fetches"
    );
    // And the handles really are zero-copy: both rounds' answers alias
    // the same columnar buffer the cache holds.
    for (a, b) in res1.iter().zip(&res2).take(3) {
        assert!(
            a.is_empty() || a.shares_buf(b),
            "cached answers share storage with the originals"
        );
    }

    // The invariant the whole layer hangs on: every query is exactly one
    // of hit / miss / extended.
    assert_eq!(d2.hits + d2.misses + d2.extended, d2.queries);

    // The JSON snapshot is the same data: spot-check one counter and the
    // span tree of the last batch.
    let snap = tr_obs::snapshot();
    let counters = snap.get("counters").expect("snapshot has counters");
    assert_eq!(
        counters.get("engine.queries").and_then(|j| j.as_u64()),
        Some(EngineCounters::read().queries)
    );
    let batch_span = tr_obs::last_root("engine.batch").expect("batch span recorded");
    for phase in ["engine.parse", "engine.plan"] {
        assert!(
            batch_span.find(phase).is_some(),
            "batch span has child {phase}"
        );
    }
    assert!(
        batch_span.find("engine.execute").is_none(),
        "round 2 executed nothing, so no execute phase span"
    );

    // Segmented execution counters. Building an engine records its corpus
    // segmentation (`corpus.segments`); forcing 4 segments re-partitions;
    // and a query through the 4-segment engine evaluates its plan nodes
    // in per-segment waves (`exec.segment_waves`), merging the per-segment
    // results under the `exec.merge_ns` accumulator.
    let seg_before = (
        tr_obs::counter_value("corpus.segments"),
        tr_obs::counter_value("exec.segment_waves"),
    );
    // Structural mode lowers every node segmented; the cost-based default
    // would (correctly) choose serial kernels on a document this small and
    // record no waves at all.
    let seg_engine = Engine::from_source(text)
        .unwrap()
        .with_segments(4)
        .with_planner_mode(tr_query::PlannerMode::Structural);
    let seg_res = seg_engine
        .query("Name within Proc_header within Proc")
        .unwrap();
    assert_eq!(seg_res, res1[0], "segmented answer identical to N = 1");
    let seg_after = (
        tr_obs::counter_value("corpus.segments"),
        tr_obs::counter_value("exec.segment_waves"),
    );
    assert_eq!(
        seg_after.0 - seg_before.0,
        5,
        "1 segment at build (tiny doc) + 4 on with_segments(4)"
    );
    assert!(
        seg_after.1 > seg_before.1,
        "a segmented plan evaluates nodes in waves"
    );
    // All three counters surface through the same snapshot the CLI's
    // `--stats-json` and the server's `stats` reply serialize.
    let snap = tr_obs::snapshot();
    let counters = snap.get("counters").expect("snapshot has counters");
    for name in ["corpus.segments", "exec.segment_waves", "exec.merge_ns"] {
        assert!(
            counters.get(name).and_then(|j| j.as_u64()).is_some(),
            "snapshot carries {name}"
        );
    }

    // Kernel-dispatch counters. Force the chunked path (deterministic
    // regardless of the `simd` feature) and run a containment query: the
    // `included_in` sweep goes through the mask kernels, whose inputs
    // here are smaller than a lane block, so the invocation must also
    // count a scalar tail. (This binary holds a single test, so flipping
    // the process-global mode is safe.)
    let k_before = (
        tr_obs::counter_value("exec.kernel_simd"),
        tr_obs::counter_value("exec.kernel_scalar_tail"),
    );
    tr_core::kernel::set_mode(tr_core::kernel::Mode::ForceChunked);
    let fresh = Engine::from_source(text).unwrap();
    let forced = fresh.query("Name within Proc_header within Proc").unwrap();
    tr_core::kernel::set_mode(tr_core::kernel::Mode::Auto);
    assert_eq!(forced, res1[0], "chunked kernels answer identically");
    let k_after = (
        tr_obs::counter_value("exec.kernel_simd"),
        tr_obs::counter_value("exec.kernel_scalar_tail"),
    );
    assert!(k_after.0 > k_before.0, "chunked kernel invocations counted");
    assert!(
        k_after.1 > k_before.1,
        "sub-lane inputs finish on the scalar tail"
    );

    // Store-open counters. A v3 save + auto load takes the mapped path,
    // a v2 file falls back to the streaming decoder; every open lands in
    // exactly one of the two counters.
    let s_before = (
        tr_obs::counter_value("store.mmap_opens"),
        tr_obs::counter_value("store.decode_fallbacks"),
    );
    let dir = std::env::temp_dir().join(format!("tr_obs_store_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let v3 = dir.join("v3.trx");
    let v2 = dir.join("v2.trx");
    tr_store::save_document(&v3, engine.text(), engine.instance(), engine.rig()).unwrap();
    tr_store::save_document_v2(&v2, engine.text(), engine.instance(), engine.rig()).unwrap();
    tr_store::load_document_auto(&v3).unwrap();
    tr_store::load_document_auto(&v2).unwrap();
    std::fs::remove_dir_all(&dir).ok();
    let s_after = (
        tr_obs::counter_value("store.mmap_opens"),
        tr_obs::counter_value("store.decode_fallbacks"),
    );
    let (d_mmap, d_fallback) = (s_after.0 - s_before.0, s_after.1 - s_before.1);
    assert_eq!(d_mmap + d_fallback, 2, "each open counted exactly once");
    assert!(d_fallback >= 1, "the v2 open is always a decode fallback");
    #[cfg(unix)]
    assert_eq!(d_mmap, 1, "the v3 open maps on unix");

    // All four new counters ride the same snapshot as the rest.
    let snap = tr_obs::snapshot();
    let counters = snap.get("counters").expect("snapshot has counters");
    for name in [
        "exec.kernel_simd",
        "exec.kernel_scalar_tail",
        "store.mmap_opens",
        "store.decode_fallbacks",
    ] {
        assert!(
            counters.get(name).and_then(|j| j.as_u64()).is_some(),
            "snapshot carries {name}"
        );
    }
}
