//! Integration tests that execute the paper's theorems across crates:
//! Proposition 3.3 (algebra ≡ restricted FMFT), Theorem 3.5 (the 3-CNF
//! reduction), Theorem 4.1 (deletion), Theorem 4.4 (reduction), and
//! Theorems 5.1/5.3 (inexpressibility sweeps).

use proptest::prelude::*;
use rand::{rngs::StdRng, Rng as _, SeedableRng as _};
use tr_core::{eval, BinOp, Expr, NameId, RegionSet, Schema};
use tr_ext::{
    both_included, both_included_probes, check_deletion_invariance, deletion_core,
    direct_inclusion_probes, reduce, sweep,
};
use tr_fmft::{
    assignment_instance, cnf_to_expr, eval_expr_on_model, random_3cnf, reduction_schema, Model,
};
use tr_markup::{figure_3_instance, random_hierarchical_instance};

fn schema_ab() -> Schema {
    Schema::new(["A", "B"])
}

fn exprs(max_ops: usize) -> impl Strategy<Value = Expr> {
    let leaf = (0usize..2).prop_map(|i| Expr::name(NameId::from_index(i)));
    leaf.prop_recursive(max_ops as u32, max_ops as u32 * 2, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), 0usize..7).prop_map(|(l, r, op)| Expr::bin(
                BinOp::ALL[op],
                l,
                r
            )),
            inner.prop_map(|e| e.select("x")),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Proposition 3.3 on generator-produced instances: evaluating the
    /// expression on the instance and its translated formula on the
    /// representing model pick out the same regions.
    #[test]
    fn proposition_3_3(e in exprs(4), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let inst = random_hierarchical_instance(&schema_ab(), 25, &["x"], 0.3, &mut rng);
        let algebra = eval(&e, &inst);
        let model = Model::from_instance(&inst, &["x"]);
        let mask = eval_expr_on_model(&e, &model);
        let forest = inst.forest();
        for (u, r, _) in forest.iter() {
            prop_assert_eq!(algebra.contains(r), mask[u]);
        }
    }

    /// Theorem 4.1 on generator-produced instances: deletions that keep
    /// the constructed core never change the query's answer.
    #[test]
    fn theorem_4_1_deletion(e in exprs(4), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let inst = random_hierarchical_instance(&schema_ab(), 20, &["x"], 0.3, &mut rng);
        let core = deletion_core(&e, &inst);
        let ok = check_deletion_invariance(&e, &inst, &core, 8, &mut rng);
        prop_assert_eq!(ok, 8);
    }
}

/// Theorem 4.4 in the Figure 3 setting: reducing the middle C's second A
/// leaves every expression with `k = 0` order operations unchanged on
/// surviving regions — exhaustively for all expressions up to 2 ops.
#[test]
fn theorem_4_4_reduction_exhaustive() {
    let (inst, h) = figure_3_instance(2);
    let reduced = reduce(&inst, h.second_a, h.first_a, &[]).expect("isomorphic");
    let schema = tr_markup::figure_3_schema();
    for ops in 0..=2 {
        tr_ext::for_each_expr(&schema, ops, &mut |e| {
            if e.num_order_ops() > 0 {
                return false; // Theorem 4.4 only constrains k = 0 here
            }
            let before = eval(e, &inst);
            let after = eval(e, &reduced);
            assert_eq!(before.is_empty(), after.is_empty(), "{e}");
            for r in reduced.all_regions().iter() {
                assert_eq!(before.contains(r), after.contains(r), "{e} at {r}");
            }
            false
        });
    }
}

/// Theorem 3.5's reduction, cross-checked against DPLL: over all 2^n
/// assignments, `e_φ` is nonempty on the assignment instance exactly when
/// the assignment satisfies φ; therefore φ is satisfiable iff some
/// canonical instance witnesses non-emptiness.
#[test]
fn theorem_3_5_reduction_agrees_with_dpll() {
    let mut rng = StdRng::seed_from_u64(99);
    for _ in 0..25 {
        let n = rng.gen_range(3..6);
        let m = rng.gen_range(1..12);
        let cnf = random_3cnf(&mut rng, n, m);
        let schema = reduction_schema(n);
        let e = cnf_to_expr(&cnf, &schema);
        let witnessed = (0u32..1 << n).any(|mask| {
            let assignment: Vec<bool> = (0..n).map(|i| mask & (1 << i) != 0).collect();
            !eval(&e, &assignment_instance(&cnf, &schema, &assignment)).is_empty()
        });
        assert_eq!(witnessed, cnf.satisfiable(), "{cnf:?}");
    }
}

/// Theorems 5.1 and 5.3 at expression size 3 (27 440 and 324 135
/// candidates): still zero matches.
#[test]
fn inexpressibility_sweeps_at_size_3() {
    let probes = direct_inclusion_probes(&[8]);
    let r = sweep(&tr_markup::figure_2_schema(), 3, &probes);
    assert_eq!(r.matching, 0);
    assert_eq!(r.checked, tr_ext::count_exprs(2, 3));

    let probes = both_included_probes(&[1]);
    let r = sweep(&tr_markup::figure_3_schema(), 3, &probes);
    assert_eq!(r.matching, 0);
    assert_eq!(r.checked, tr_ext::count_exprs(3, 3));
}

/// Proposition 5.5's moral, executably: adding one of the two extended
/// operators does not give you the other. We verify the ingredients: the
/// Figure 2 family (which defeats the algebra on `⊃_d`) is invariant
/// under the `reduce` machinery that defeats `BI`, and vice versa the
/// Figure 3 family has bounded nesting (depth 2), where `⊃_d` *is*
/// expressible (Prop 5.2).
#[test]
fn proposition_5_5_ingredients() {
    // Figure 3 has nesting depth 2 → ⊃_d expressible there (Prop 5.2).
    let (inst, _) = figure_3_instance(2);
    assert_eq!(inst.nesting_depth(), 2);
    let s = inst.schema().clone();
    let e = tr_ext::direct_including_expr(
        &Expr::name(s.expect_id("C")),
        &Expr::name(s.expect_id("A")),
        &s,
        2,
    );
    let native =
        tr_ext::directly_including(&inst, inst.regions_of_name("C"), inst.regions_of_name("A"));
    assert_eq!(eval(&e, &inst), native);

    // Figure 2 has only one region per level → BI is trivial there
    // (never a disjoint pair inside anything), so BI cannot help ⊃_d.
    let inst2 = tr_markup::figure_2_instance(8);
    let a = inst2.regions_of_name("A");
    let b = inst2.regions_of_name("B");
    let all: RegionSet = inst2.all_regions();
    assert!(both_included(&all, a, b).is_empty());
    assert!(both_included(&all, b, a).is_empty());
}
