//! Property tests for the substrates: the suffix-array word index against
//! a naive scanning oracle, SGML render/parse round trips, query-language
//! display/parse round trips, and n-ary relation laws.

use proptest::prelude::*;
use tr_core::{region, NameId, Region, Schema, WordIndex};
use tr_nary::Relation;
use tr_query::Query;
use tr_text::{Pattern, SuffixWordIndex};

/// Oracle: does `pattern` (under the module's pattern semantics) occur
/// fully inside `r` in `text`?
fn naive_matches(text: &[u8], r: Region, pattern: &str) -> bool {
    let is_word = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    let word_start =
        |i: usize| i < text.len() && is_word(text[i]) && (i == 0 || !is_word(text[i - 1]));
    let occurrences: Vec<(usize, usize)> = match Pattern::parse(pattern) {
        Pattern::Substring(s) => (0..text.len().saturating_sub(s.len() - 1))
            .filter(|&i| text[i..].starts_with(s.as_bytes()))
            .map(|i| (i, s.len()))
            .collect(),
        Pattern::WordExact(s) => (0..text.len())
            .filter(|&i| {
                word_start(i)
                    && text[i..].starts_with(s.as_bytes())
                    && !text.get(i + s.len()).copied().is_some_and(is_word)
            })
            .map(|i| (i, s.len()))
            .collect(),
        Pattern::WordPrefix(s) => (0..text.len())
            .filter(|&i| word_start(i) && text[i..].starts_with(s.as_bytes()))
            .map(|i| {
                let mut end = i;
                while end < text.len() && is_word(text[end]) {
                    end += 1;
                }
                (i, end - i)
            })
            .collect(),
    };
    occurrences
        .iter()
        .any(|&(start, len)| start as u32 >= r.left() && (start + len - 1) as u32 <= r.right())
}

fn texts() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(
        prop_oneof![Just(b'a'), Just(b'b'), Just(b'c'), Just(b' '), Just(b'.')],
        1..60,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The suffix-array index agrees with the scanning oracle for all
    /// three pattern forms, on arbitrary regions of arbitrary texts.
    #[test]
    fn word_index_matches_oracle(
        text in texts(),
        l in 0u32..60,
        len in 0u32..30,
        pat in prop_oneof![
            Just("a"), Just("ab"), Just("ba"), Just("a*"), Just("ab*"),
            Just("a b"), Just("c."), Just("abc"),
        ],
    ) {
        let n = text.len() as u32;
        let l = l.min(n - 1);
        let r = region(l, (l + len).min(n - 1));
        let idx = SuffixWordIndex::new(text.clone());
        prop_assert_eq!(
            idx.matches(r, pat),
            naive_matches(&text, r, pat),
            "text {:?} region {} pattern {:?}", String::from_utf8_lossy(&text), r, pat
        );
    }
}

/// Strategy: a random element tree rendered to SGML, returning
/// `(markup, number of elements, max depth)`.
fn sgml_docs() -> impl Strategy<Value = (String, usize, usize)> {
    #[derive(Debug, Clone)]
    enum Node {
        Text(u8),
        Elem(usize, Vec<Node>),
    }
    fn leaf() -> impl Strategy<Value = Node> {
        (0u8..3).prop_map(Node::Text)
    }
    let node = leaf().prop_recursive(4, 24, 4, |inner| {
        prop_oneof![(0usize..3, proptest::collection::vec(inner, 0..4))
            .prop_map(|(t, kids)| Node::Elem(t, kids)),]
    });
    proptest::collection::vec(node, 0..4).prop_map(|roots| {
        fn render(n: &Node, out: &mut String, count: &mut usize, depth: usize, max: &mut usize) {
            match n {
                Node::Text(t) => out.push_str(["x ", "yy ", "z."][*t as usize % 3]),
                Node::Elem(tag, kids) => {
                    *count += 1;
                    *max = (*max).max(depth + 1);
                    let name = ["a", "b", "c"][*tag % 3];
                    out.push('<');
                    out.push_str(name);
                    out.push('>');
                    for k in kids {
                        render(k, out, count, depth + 1, max);
                    }
                    out.push_str("</");
                    out.push_str(name);
                    out.push('>');
                }
            }
        }
        let mut out = String::new();
        let mut count = 0;
        let mut max = 0;
        for r in &roots {
            render(r, &mut out, &mut count, 0, &mut max);
        }
        (out, count, max)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every rendered element tree parses back with exactly one region per
    /// element and the tree's depth.
    #[test]
    fn sgml_render_parse_round_trip((doc, elements, depth) in sgml_docs()) {
        let inst = tr_markup::parse_sgml(&doc).unwrap();
        prop_assert_eq!(inst.len(), elements);
        prop_assert_eq!(inst.nesting_depth(), depth);
    }
}

/// Strategy: random query ASTs over a 2-name schema.
fn queries() -> impl Strategy<Value = Query> {
    let leaf = (0usize..2).prop_map(|i| Query::Name(NameId::from_index(i)));
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Query::Union(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Query::Minus(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Query::Within(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Query::DirectlyContaining(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Query::Before(Box::new(a), Box::new(b))),
            inner
                .clone()
                .prop_map(|q| Query::Matching("pat x".into(), Box::new(q))),
            (inner.clone(), inner.clone(), inner).prop_map(|(a, b, c)| Query::BothIncluded(
                Box::new(a),
                Box::new(b),
                Box::new(c)
            )),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `display` output re-parses to the same AST (the REPL's `:explain`
    /// and view expansion depend on this).
    #[test]
    fn query_display_parse_round_trip(q in queries()) {
        let schema = Schema::new(["A", "B"]);
        let text = q.display(&schema).to_string();
        let parsed = tr_query::parse(&text, &schema).unwrap();
        prop_assert_eq!(parsed, q, "text was {}", text);
    }
}

fn relations() -> impl Strategy<Value = Relation> {
    proptest::collection::vec((0u32..20, 0u32..8), 0..8).prop_map(|pairs| {
        Relation::from_tuples(
            1,
            pairs
                .into_iter()
                .map(|(l, w)| vec![region(l, l + w)])
                .collect(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Relational laws the n-ary evaluator relies on.
    #[test]
    fn relation_laws(a in relations(), b in relations(), c in relations()) {
        // Union/intersection are commutative, associative, idempotent.
        prop_assert_eq!(a.union(&b), b.union(&a));
        prop_assert_eq!(a.intersect(&b), b.intersect(&a));
        prop_assert_eq!(a.union(&a), a.clone());
        prop_assert_eq!(a.union(&b).union(&c), a.union(&b.union(&c)));
        // Difference laws.
        prop_assert_eq!(a.difference(&b).intersect(&b).len(), 0);
        prop_assert_eq!(a.difference(&b).union(&a.intersect(&b)), a.clone());
        // Product arity and size; projection inverts product.
        let p = a.product(&b);
        prop_assert_eq!(p.arity(), 2);
        prop_assert_eq!(p.len(), a.len() * b.len());
        if !b.is_empty() {
            prop_assert_eq!(p.project(&[0]), a.clone());
        }
        if !a.is_empty() {
            prop_assert_eq!(p.project(&[1]), b.clone());
        }
    }
}
