//! End-to-end pipeline tests: documents → instances → queries → regions,
//! across `tr-markup`, `tr-text`, `tr-rig`, `tr-query`.

use rand::prelude::*;
use tr_markup::{parse_program, source_schema, ProcSpec, ProgramSpec};
use tr_query::Engine;
use tr_rig::{satisfies_rig, Rig};

/// Index → save → load → query: the persisted index answers identically,
/// keeps its RIG (so the planner still optimizes), and rejects tampering.
#[test]
fn persistence_round_trip_through_the_engine() {
    let mut rng = StdRng::seed_from_u64(77);
    let spec = ProgramSpec::random(&mut rng, 25, 4, 3);
    let text = spec.render();
    let engine = Engine::from_source(&text).unwrap();
    let path = std::env::temp_dir().join(format!("tr_pipeline_{}.trx", std::process::id()));
    tr_store::save_document(&path, engine.text(), engine.instance(), engine.rig()).unwrap();

    let doc = tr_store::load_document(&path).unwrap();
    std::fs::remove_file(&path).ok();
    let loaded = Engine::from_parts(doc.text, doc.instance, doc.rig);
    for q in [
        "Name within Proc_header within Proc within Program",
        r#"Var matching "x" within Proc"#,
        "Proc directly containing Proc_body",
        r#""var" within Prog_body"#,
    ] {
        assert_eq!(
            engine.query(q).unwrap(),
            loaded.query(q).unwrap(),
            "query {q}"
        );
    }
    assert_eq!(
        engine
            .explain("Name within Proc_header within Proc within Program")
            .unwrap(),
        loaded
            .explain("Name within Proc_header within Proc within Program")
            .unwrap(),
        "the RIG survives persistence"
    );
}

/// Every generated program parses into an instance satisfying Figure 1's
/// RIG, with the counts the spec dictates.
#[test]
fn generated_programs_satisfy_figure_1() {
    let mut rng = StdRng::seed_from_u64(2024);
    let rig = Rig::figure_1();
    for _ in 0..25 {
        let target = rng.gen_range(0..40);
        let spec = ProgramSpec::random(&mut rng, target, 5, 3);
        let inst = parse_program(&spec.render()).expect("generator output parses");
        assert!(satisfies_rig(&inst, &rig));
        assert_eq!(inst.regions_of_name("Proc").len(), spec.num_procs());
        assert_eq!(inst.regions_of_name("Program").len(), 1);
        assert_eq!(
            inst.regions_of_name("Name").len(),
            spec.num_procs() + 1,
            "one name per proc plus the program's"
        );
    }
}

/// The markup schema and the RIG crate's Figure 1 schema agree — queries
/// written against either resolve identically.
#[test]
fn schemas_are_shared() {
    assert_eq!(&source_schema(), Rig::figure_1().schema());
}

/// The engine's answers match ground truth computed from the spec:
/// procedure names via the chain query, per-variable declaration counts
/// via σ.
#[test]
fn engine_matches_spec_ground_truth() {
    let spec = ProgramSpec {
        name: "main".into(),
        vars: vec!["x".into(), "count".into()],
        procs: vec![
            ProcSpec {
                name: "alpha".into(),
                vars: vec!["x".into()],
                procs: vec![ProcSpec {
                    name: "beta".into(),
                    vars: vec!["y".into(), "x".into()],
                    procs: vec![],
                }],
            },
            ProcSpec {
                name: "gamma".into(),
                vars: vec![],
                procs: vec![],
            },
        ],
    };
    let text = spec.render();
    let engine = Engine::from_source(&text).unwrap();

    // Procedure names through the (RIG-optimizable) chain.
    let names = engine
        .query("Name within Proc_header within Proc within Program")
        .unwrap();
    let mut found: Vec<&str> = names.iter().map(|r| engine.snippet(r)).collect();
    found.sort_unstable();
    assert_eq!(found, vec!["alpha", "beta", "gamma"]);

    // Declarations of x: three (main's, alpha's, beta's).
    assert_eq!(engine.query(r#"Var matching "x""#).unwrap().len(), 3);
    // …of which two are inside procedures.
    assert_eq!(
        engine
            .query(r#"Var matching "x" within Proc"#)
            .unwrap()
            .len(),
        2
    );
    // Procedures *directly* defining x (Section 5.1's query).
    let direct = engine
        .query(r#"Proc directly containing (Proc_body directly containing (Var matching "x"))"#)
        .unwrap();
    let mut found: Vec<&str> = direct
        .iter()
        .map(|r| engine.snippet(r).lines().next().unwrap().trim())
        .collect();
    found.sort_unstable();
    assert_eq!(found, vec!["proc alpha;", "proc beta;"]);
}

/// SGML and source documents agree on structural queries phrased both as
/// direct algebra and through the engine.
#[test]
fn sgml_pipeline_counts() {
    let doc = "<book><ch><sec>one</sec><sec>two</sec></ch><ch><sec>three</sec></ch></book>";
    let engine = Engine::from_sgml(doc).unwrap();
    assert_eq!(engine.query("sec within ch").unwrap().len(), 3);
    assert_eq!(engine.query("ch containing sec").unwrap().len(), 2);
    assert_eq!(
        engine
            .query("sec before (sec matching \"three\")")
            .unwrap()
            .len(),
        2
    );
    assert_eq!(
        engine
            .query("sec after (sec matching \"one\")")
            .unwrap()
            .len(),
        2
    );
    // Snippets round-trip through the suffix index.
    let hits = engine.query("sec matching \"two\"").unwrap();
    assert_eq!(hits.len(), 1);
    assert_eq!(
        engine.snippet(hits.iter().next().unwrap()),
        "<sec>two</sec>"
    );
}

/// Word-index semantics through the engine: exact word vs prefix.
#[test]
fn pattern_semantics_end_to_end() {
    let doc = "<d><p>category</p><p>cat</p><p>concatenate</p></d>";
    let engine = Engine::from_sgml(doc).unwrap();
    assert_eq!(
        engine.query(r#"p matching "cat""#).unwrap().len(),
        1,
        "exact word"
    );
    assert_eq!(
        engine.query(r#"p matching "cat*""#).unwrap().len(),
        2,
        "word prefix"
    );
    assert_eq!(engine.query(r#"p matching "concat*""#).unwrap().len(), 1);
}

/// Optimization is semantics-preserving end to end: with and without the
/// RIG-based planner, answers coincide on random programs.
#[test]
fn planner_is_semantics_preserving() {
    let mut rng = StdRng::seed_from_u64(7);
    let queries = [
        "Name within Proc_header within Proc within Program",
        "Var within Proc_body within Proc within Prog_body within Program",
        "Name within Prog_header within Program",
        "Proc within Prog_body within Program",
    ];
    for _ in 0..10 {
        let target = rng.gen_range(0..25);
        let spec = ProgramSpec::random(&mut rng, target, 4, 2);
        let text = spec.render();
        let with_rig = Engine::from_source(&text).unwrap();
        let inst = parse_program(&text).unwrap();
        for q in queries {
            let optimized = with_rig.query(q).unwrap();
            // Bypass the planner: compile and evaluate directly.
            let raw = with_rig.compile(q).unwrap().expect("pure algebra");
            let unoptimized = tr_core::eval(&raw, &inst);
            assert_eq!(optimized, unoptimized, "query {q}");
        }
    }
}
