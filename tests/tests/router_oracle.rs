//! Property oracle for the sharded serving tier (ISSUE 10): results
//! merged across partitions must be **byte-identical** to single-node
//! evaluation, across shard counts ∈ {1, 2, 3} and backend assignment
//! permutations, including queries whose result regions straddle the
//! shard boundaries.
//!
//! Two layers of the same oracle:
//!
//! * the engine layer — `query_shard` over an arbitrary ordered tiling
//!   of the position space, concatenated with `RegionSet::concat`,
//!   versus a plain `query` on the same engine (this is the algebraic
//!   core the router relies on: operators distribute over position
//!   windows given boundary context);
//! * the serving layer — a real `Router` over 1–3 real backend
//!   `Server`s, with documents assigned to arbitrary non-empty backend
//!   subsets, versus a reference server holding every document. The
//!   router config zeroes `remote_fanout_ns` so replicated documents
//!   take the scatter path deterministically.

use proptest::prelude::*;
use tr_core::{CostModel, RegionSet};
use tr_query::{Engine, SessionViews};
use tr_serve::{BackendSpec, Catalog, Client, Router, RouterConfig, Server, ServerConfig};

/// Small vocabulary so `matching` queries routinely hit.
const WORDS: [&str; 6] = ["be", "question", "fortune", "arms", "sea", "silence"];

/// Builds a play whose act/speech sizes come from the strategy, with
/// every speech carrying a vocabulary word — wide acts make straddling
/// any shard cut likely.
fn play(acts: &[Vec<u8>]) -> String {
    let mut s = String::from("<play>");
    for (a, speeches) in acts.iter().enumerate() {
        s.push_str("<act>");
        for (sp, &w) in speeches.iter().enumerate() {
            s.push_str(&format!(
                "<speech>act {a} scene {sp} says {} and {}</speech>",
                WORDS[w as usize % WORDS.len()],
                WORDS[(w as usize + a) % WORDS.len()],
            ));
        }
        s.push_str("</act>");
    }
    s.push_str("</play>");
    s
}

/// The query mix: point matches, structural joins, and set algebra —
/// each shape stresses a different partner-window rule at boundaries.
const QUERIES: [&str; 6] = [
    "speech",
    r#"speech matching "be""#,
    "speech within act",
    "act containing speech",
    r#"(speech matching "sea") union (speech matching "arms")"#,
    r#"speech minus (speech matching "be")"#,
];

fn acts_strategy() -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(proptest::collection::vec(0u8..6, 1..4), 1..8)
}

proptest! {
    /// Engine layer: for any document, any shard count in {1, 2, 3},
    /// and any cut positions, concatenating `query_shard` over the
    /// tiling reproduces `query` byte-for-byte — columns included.
    #[test]
    fn shard_tiling_reproduces_single_node(
        acts in acts_strategy(),
        shards in 1usize..=3,
        cuts in proptest::collection::vec(0u32..4096, 2..3),
    ) {
        let text = play(&acts);
        let engine = Engine::from_sgml(&text).unwrap();
        let session = SessionViews::new();
        // Shard boundaries: `shards - 1` cut positions clamped into the
        // document, deduped and sorted; the tiling always spans [0, ∞).
        let len = text.len() as u32;
        let mut bounds: Vec<u32> = cuts[..shards - 1]
            .iter()
            .map(|&c| c % (len + 1))
            .collect();
        bounds.sort_unstable();
        bounds.dedup();
        let mut windows = Vec::new();
        let mut lo = 0u32;
        for &b in &bounds {
            windows.push((lo, b));
            lo = b;
        }
        windows.push((lo, u32::MAX));

        for q in QUERIES {
            let full = engine.query_with(&session, q).unwrap();
            let parts: Vec<RegionSet> = windows
                .iter()
                .map(|&(lo, hi)| engine.query_shard(&session, q, lo, hi).unwrap())
                .collect();
            let merged = RegionSet::concat(&parts);
            prop_assert_eq!(merged.to_vec(), full.to_vec(), "regions diverge for {}", q);
            prop_assert_eq!(merged.lefts(), full.lefts(), "lefts column diverges for {}", q);
            prop_assert_eq!(merged.rights(), full.rights(), "rights column diverges for {}", q);
        }
    }
}

/// Three fixed documents, distinct enough that a misrouted reply is
/// visible in the very first hit count.
fn corpus() -> Vec<(String, String)> {
    vec![
        ("alpha".to_owned(), play(&[vec![0, 1, 2], vec![3, 4]])),
        (
            "bravo".to_owned(),
            play(&(0..24).map(|a| vec![a as u8 % 6, 5, 1]).collect::<Vec<_>>()),
        ),
        ("charlie".to_owned(), play(&[vec![5], vec![5, 5], vec![0]])),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Serving layer: a real router over 1–3 real backends, documents
    /// assigned to arbitrary non-empty backend subsets (bitmask per
    /// doc), versus a reference server holding everything. Replicated
    /// documents scatter (fanout cost zeroed); sole-replica documents
    /// forward. Replies must match field-for-field.
    #[test]
    fn router_merge_matches_reference_server(
        shards in 1usize..=3,
        masks in proptest::collection::vec(1u8..8, 3..4),
    ) {
        let docs = corpus();

        // Backend `b` holds doc `d` iff bit `b` of d's mask is set
        // (masks are non-zero, then clamped into the live shard range
        // so every document lands somewhere).
        let mut catalogs: Vec<Catalog> = (0..shards).map(|_| Catalog::new()).collect();
        let mut reference = Catalog::new();
        for (d, (name, text)) in docs.iter().enumerate() {
            let mask = masks[d] as usize;
            let mut placed = false;
            for (b, catalog) in catalogs.iter_mut().enumerate() {
                if mask & (1 << b) != 0 {
                    catalog.insert(name, Engine::from_sgml(text).unwrap());
                    placed = true;
                }
            }
            if !placed {
                catalogs[d % shards].insert(name, Engine::from_sgml(text).unwrap());
            }
            reference.insert(name, Engine::from_sgml(text).unwrap());
        }

        let backends: Vec<Server> = catalogs
            .into_iter()
            .map(|c| Server::start(c, "127.0.0.1:0", ServerConfig::default()).unwrap())
            .collect();
        let reference = Server::start(reference, "127.0.0.1:0", ServerConfig::default()).unwrap();

        let specs: Vec<BackendSpec> = backends
            .iter()
            .enumerate()
            .map(|(i, s)| BackendSpec {
                name: format!("b{i}"),
                addr: s.local_addr().to_string(),
            })
            .collect();
        let cfg = RouterConfig {
            cost_model: CostModel {
                remote_fanout_ns: 0.0,
                ..CostModel::default()
            },
            ..RouterConfig::default()
        };
        let router = Router::start(specs, "127.0.0.1:0", cfg).unwrap();
        prop_assert_eq!(router.num_docs(), docs.len());

        let mut routed = Client::connect(router.local_addr()).unwrap();
        let mut direct = Client::connect(reference.local_addr()).unwrap();
        for (name, _) in &docs {
            for q in QUERIES {
                let via_router = routed.query(name, q).unwrap();
                let single = direct.query(name, q).unwrap();
                for field in ["hits", "regions", "truncated"] {
                    prop_assert_eq!(
                        via_router.get(field),
                        single.get(field),
                        "{} diverges for {} on {:?} ({} shard(s), masks {:?})",
                        field, q, name, shards, &masks
                    );
                }
            }
        }

        router.shutdown();
        reference.shutdown();
        for b in backends {
            b.shutdown();
        }
    }
}
