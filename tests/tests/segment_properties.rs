//! Property tests for segmented execution: the oracle of ISSUE 5. For
//! any region sets, any operator, and any segment count N, evaluating
//! per segment with boundary-window partner operands and k-way ordered
//! merge must be **byte-identical** to the unsegmented (N = 1) kernels —
//! same regions, same column contents. The strategies deliberately
//! produce regions that straddle, touch, and nest across the segment
//! boundaries `segment_bounds` places every `doc_len / N` positions.

use proptest::prelude::*;
use tr_core::par::Parallelism;
use tr_core::seg::{self, segment_bounds, split_points};
use tr_core::{region, BinOp, Pos, Region, RegionSet};
use tr_query::Engine;

/// Position space used by the core-level strategies: regions start in
/// `0..240` with widths `0..16`, so at N = 16 over `DOC_LEN = 256`
/// (boundaries every 16) widths routinely straddle a boundary.
const DOC_LEN: usize = 256;

const SEGMENT_COUNTS: [usize; 5] = [1, 2, 3, 7, 16];

fn region_vecs() -> impl Strategy<Value = Vec<Region>> {
    proptest::collection::vec((0u32..240, 0u32..16), 0..48).prop_map(|pairs| {
        let mut v: Vec<Region> = pairs.into_iter().map(|(l, d)| region(l, l + d)).collect();
        v.sort();
        v.dedup();
        v
    })
}

/// Aggressive parallelism: enough threads to split, a cutoff low enough
/// that even small inputs take the parallel path.
fn par() -> Parallelism {
    Parallelism::new(4, 2)
}

const ALL_OPS: [BinOp; 7] = [
    BinOp::Union,
    BinOp::Intersect,
    BinOp::Diff,
    BinOp::Including,
    BinOp::IncludedIn,
    BinOp::Before,
    BinOp::After,
];

fn assert_identical(got: &RegionSet, want: &RegionSet, ctx: &str) {
    assert_eq!(got.to_vec(), want.to_vec(), "{ctx}");
    assert_eq!(got.lefts(), want.lefts(), "{ctx}: lefts column");
    assert_eq!(got.rights(), want.rights(), "{ctx}: rights column");
    assert!(
        got.validate().is_ok(),
        "{ctx}: {}",
        got.validate().unwrap_err()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every binary operator at every segment count equals the N = 1
    /// evaluation (which `eval_bin_segmented` routes to the `_par`
    /// whole-document kernels).
    #[test]
    fn segmented_operators_match_unsegmented(av in region_vecs(), bv in region_vecs()) {
        let r = RegionSet::from_regions(av);
        let s = RegionSet::from_regions(bv);
        let p = par();
        let oracle_bounds = segment_bounds(DOC_LEN, 1);
        for op in ALL_OPS {
            let want = seg::eval_bin_segmented(op, &r, &s, &oracle_bounds, &p);
            for n in SEGMENT_COUNTS {
                let bounds = segment_bounds(DOC_LEN, n);
                let got = seg::eval_bin_segmented(op, &r, &s, &bounds, &p);
                assert_identical(&got, &want, &format!("{op:?} at N={n}"));
            }
        }
    }

    /// Segment-parallel `filter` (the `Select` kernel) equals plain
    /// `filter` at every segment count, for a predicate producing both
    /// contiguous and scattered survivors.
    #[test]
    fn segmented_filter_matches_unsegmented(
        av in region_vecs(),
        lo in 0u32..240,
        hi in 0u32..256,
    ) {
        let a = RegionSet::from_regions(av);
        let pred = |r: Region| r.left() >= lo && r.right() <= hi;
        let want = a.filter(pred);
        for n in SEGMENT_COUNTS {
            let bounds = segment_bounds(DOC_LEN, n);
            let got = seg::filter_segmented(&a, &bounds, &par(), pred);
            assert_identical(&got, &want, &format!("filter at N={n}"));
        }
    }

    /// `split_points` partitions by left endpoint: gluing the per-segment
    /// slices back together is the identity, and every region lands in
    /// the segment containing its left endpoint.
    #[test]
    fn split_points_partition_round_trips(av in region_vecs(), n in 1usize..=16) {
        let a = RegionSet::from_regions(av);
        let bounds = segment_bounds(DOC_LEN, n);
        let ps = split_points(&a, &bounds);
        prop_assert_eq!(ps.len(), n + 1);
        prop_assert_eq!(ps[0], 0);
        prop_assert_eq!(ps[n], a.len());
        let parts: Vec<RegionSet> = (0..n).map(|i| a.slice(ps[i], ps[i + 1])).collect();
        for (i, part) in parts.iter().enumerate() {
            for r in part.iter() {
                prop_assert!(
                    r.left() >= bounds[i] && (r.left() as u64) < bounds[i + 1] as u64
                        || (i == n - 1 && r.left() >= bounds[i]),
                    "region {r:?} misplaced in segment {i}"
                );
            }
        }
        let glued = RegionSet::concat(&parts);
        prop_assert_eq!(&glued, &a);
        prop_assert!(glued.shares_buf(&a) || a.is_empty(), "adjacent slices must reglue zero-copy");
    }

    /// `segment_bounds` is a monotone cover of the position space for
    /// any document length and count.
    #[test]
    fn bounds_cover_any_length(doc_len in 0usize..100_000, n in 1usize..=16) {
        let bounds = segment_bounds(doc_len, n);
        prop_assert_eq!(bounds.len(), n + 1);
        prop_assert_eq!(bounds[0], 0);
        prop_assert!(bounds.windows(2).all(|w| w[0] <= w[1]));
        prop_assert!(bounds[n] as u64 >= doc_len as u64 || bounds[n] == Pos::MAX);
    }
}

/// End-to-end oracle on a real document: random word soup marked up as
/// SGML, the full query surface (matching, containment, sequence, set
/// ops), and every segment count against the N = 1 engine. This drives
/// the whole stack — parser, plan lowering, segmented executor, merge —
/// not just the kernels.
#[test]
fn engine_results_identical_across_segment_counts_on_random_docs() {
    use rand::{rngs::StdRng, Rng, SeedableRng};

    let words = ["alpha", "beta", "gamma", "delta", "rho"];
    let queries = [
        r#"sec matching "beta""#,
        r#"sec matching "gamma" minus (sec containing note)"#,
        "note within sec",
        r#""alpha" within sec"#,
        r#"(sec containing "delta") union (sec containing note)"#,
        r#"note after (sec matching "alpha")"#,
        r#"sec before note"#,
    ];
    for seed in 0u64..6 {
        let mut rng = StdRng::seed_from_u64(0xC0FFEE ^ seed);
        let mut text = String::from("<doc>");
        for _ in 0..rng.gen_range(3..20) {
            text.push_str("<sec>");
            for _ in 0..rng.gen_range(1..12) {
                let w = words[rng.gen_range(0..words.len())];
                if rng.gen_range(0..4) == 0 {
                    text.push_str("<note>");
                    text.push_str(w);
                    text.push_str("</note>");
                } else {
                    text.push_str(w);
                }
                text.push(' ');
            }
            text.push_str("</sec>");
        }
        text.push_str("</doc>");

        let baseline = Engine::from_sgml(&text).unwrap().with_segments(1);
        for n in [2usize, 3, 7, 16] {
            let seg_engine = Engine::from_sgml(&text).unwrap().with_segments(n);
            assert_eq!(seg_engine.segment_count(), n);
            for q in queries {
                let a = baseline.query(q).unwrap();
                let b = seg_engine.query(q).unwrap();
                assert_eq!(a.lefts(), b.lefts(), "seed {seed}, query {q}, N={n}");
                assert_eq!(a.rights(), b.rights(), "seed {seed}, query {q}, N={n}");
            }
        }
    }
}
